"""Per-sample streaming under the GDB-Kernel scheme.

The Driver-Kernel stream moves *blocks* through driver messages; the
bare-metal GDB-Kernel equivalent moves one sample per synchronised
variable access — two breakpoint transfers per sample.  The guest
computes the same moving average incrementally (ring buffer +
running sum), so results are bit-identical with the block variant and
the host reference; only the co-simulation cost profile differs.
"""

from repro.cosim.ports import IssInPort, IssOutPort, make_iss_process
from repro.errors import ReproError
from repro.iss.assembler import assemble
from repro.stream.reference import generate_samples, moving_average
from repro.sysc.event import Event
from repro.sysc.module import Module

SAMPLE_IN_VAR = "sample_in"
SAMPLE_OUT_VAR = "sample_out"


def gdb_filter_source(window=4, origin=0x1000):
    """Bare-metal incremental moving-average filter."""
    if window < 1 or window & (window - 1):
        raise ReproError("window must be a power of two, got %d" % window)
    shift = window.bit_length() - 1
    return """
; per-sample streaming moving-average filter (GDB-Kernel scheme)
        .entry main
        .org 0x%x
        .equ WINDOW, %d
        .equ SHIFT, %d
main:
        ; zero the ring buffer
        la   r6, ring
        li   r7, WINDOW
        li   r8, 0
zero_ring:
        beq  r7, r8, start
        sw   r8, [r6]
        addi r6, r6, 4
        addi r7, r7, -1
        b    zero_ring
start:
        li   r5, 0              ; running window sum
        li   r11, 0             ; ring index
loop:
        ; Synchronised read: held at the breakpoint until the source
        ; posts a fresh sample.
        la   r10, sample_in
        ;#pragma iss_out sample_in
        lw   r0, [r10]
        ; acc += x - ring[idx]; ring[idx] = x
        la   r6, ring
        shli r3, r11, 2
        add  r6, r6, r3
        lw   r2, [r6]
        sub  r5, r5, r2
        add  r5, r5, r0
        sw   r0, [r6]
        addi r11, r11, 1
        li   r3, WINDOW
        bne  r11, r3, no_wrap
        li   r11, 0
no_wrap:
        shri r12, r5, SHIFT
        ; Publish: the kernel collects the variable at the breakpoint
        ; on the line after the store.
        la   r10, sample_out
        ;#pragma iss_in sample_out
        sw   r12, [r10]
        nop
        b    loop
ring:       .space %d
sample_in:  .word 0
sample_out: .word 0
""" % (origin, window, shift, 4 * window)


class PerSampleSource(Module):
    """Posts one sample at a time to the guest variable port."""

    def __init__(self, sink, total_samples, inter_sample_delay, seed=1,
                 kernel=None):
        super().__init__("source", kernel)
        self.sink = sink
        self.inter_sample_delay = inter_sample_delay
        self.port = IssOutPort(SAMPLE_IN_VAR, SAMPLE_IN_VAR, kernel)
        self.samples = generate_samples(total_samples, seed)
        self.samples_sent = 0
        self.thread(self._stream, name="stream")

    def _stream(self):
        for sample in self.samples:
            self.port.post(sample)
            self.samples_sent += 1
            while len(self.sink.received) < self.samples_sent:
                yield self.sink.sample_event
            yield self.inter_sample_delay


class PerSampleSink(Module):
    """Receives filtered samples one at a time; verifies each."""

    def __init__(self, total_samples, window, seed=1, kernel=None):
        super().__init__("sink", kernel)
        self.port = IssInPort(SAMPLE_OUT_VAR, SAMPLE_OUT_VAR, kernel)
        self.sample_event = Event("sink.sample", kernel)
        self.total_samples = total_samples
        expected, __ = moving_average(generate_samples(total_samples,
                                                       seed), window)
        self._expected = expected
        self.received = []
        self.mismatches = 0
        self.completed_at = None
        make_iss_process(self, self._on_sample, [self.port],
                         name="on_sample")

    def _on_sample(self):
        value = self.port.read()
        index = len(self.received)
        if index < len(self._expected) \
                and value != self._expected[index]:
            self.mismatches += 1
        self.received.append(value)
        if (self.completed_at is None
                and len(self.received) >= self.total_samples):
            self.completed_at = self.kernel.now
        self.sample_event.notify()
