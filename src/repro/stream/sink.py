"""The SystemC sample sink: collects and verifies filtered blocks."""

from repro.cosim.ports import IssInPort, make_iss_process
from repro.stream.reference import generate_samples, moving_average
from repro.sysc.event import Event
from repro.sysc.module import Module

SAMPLES_OUT_PORT = "samples_out"


class SampleSink(Module):
    """Receives filtered blocks; checks every word against the host
    reference filter (tracking the same carried history)."""

    def __init__(self, total_samples, block_words, window, seed=1,
                 kernel=None):
        super().__init__("sink", kernel)
        self.port = IssInPort(SAMPLES_OUT_PORT, SAMPLES_OUT_PORT, kernel)
        self.block_event = Event("sink.block", kernel)
        self.window = window
        self.block_words = block_words
        self.total_samples = total_samples
        self._inputs = generate_samples(total_samples, seed)
        self._position = 0
        self._history = [0] * (window - 1)
        self.received = []
        self.blocks_received = 0
        self.mismatches = 0
        self.first_mismatch = None
        self.completed_at = None   # simulated time the stream finished
        make_iss_process(self, self._on_block, [self.port],
                         name="on_block")

    def _on_block(self):
        payload = self.port.read()
        words = [int.from_bytes(payload[i:i + 4], "little")
                 for i in range(0, len(payload), 4)]
        inputs = self._inputs[self._position:self._position + len(words)]
        self._position += len(words)
        expected, self._history = moving_average(inputs, self.window,
                                                 self._history)
        for index, (got, want) in enumerate(zip(words, expected)):
            if got != want:
                self.mismatches += 1
                if self.first_mismatch is None:
                    self.first_mismatch = (self.blocks_received, index,
                                           got, want)
        self.received.extend(words)
        self.blocks_received += 1
        if (self.completed_at is None
                and len(self.received) >= self.total_samples):
            self.completed_at = self.kernel.now
        self.block_event.notify()
