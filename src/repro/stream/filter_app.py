"""The guest moving-average filter (R32 assembly)."""

from dataclasses import dataclass

from repro.errors import ReproError
from repro.iss.assembler import Program, assemble

FILTER_DEVICE_ID = 1
FILTER_SEMAPHORE_ID = 1


def filter_app_source(block_words=16, window=4, origin=0x1000):
    """RTOS application: read a block, filter, write the block back.

    The filter is an integer moving average over *window* samples
    (a power of two; division is a shift), with the last ``window-1``
    inputs carried in guest memory across blocks — matching
    :func:`repro.stream.reference.moving_average` exactly.
    """
    if window < 1 or window & (window - 1):
        raise ReproError("window must be a power of two, got %d" % window)
    shift = window.bit_length() - 1
    window_minus_1 = window - 1
    return """
; streaming moving-average filter (Driver-Kernel scheme)
        .entry main
        .org 0x%x
        .equ DEV, %d
        .equ SEM, %d
        .equ WINDOW, %d
        .equ WM1, %d
        .equ SHIFT, %d
        .equ BLOCK, %d
main:
        li   r0, DEV
        sys  32                 ; dev_open
        mov  r4, r0
        mov  r0, r4
        li   r1, 1
        la   r2, isr
        sys  35                 ; register ISR
        ; zero the history window
        la   r5, hist
        li   r7, WM1
        li   r8, 0
zero_hist:
        beq  r7, r8, loop
        sw   r8, [r5]
        addi r5, r5, 4
        addi r7, r7, -1
        b    zero_hist
loop:
        li   r0, SEM
        sys  18                 ; wait for a block
        mov  r0, r4
        la   r1, inbuf
        li   r2, BLOCK
        sys  33                 ; dev_read -> n words in r0
        mov  r9, r0
        li   r8, 0
        ; work = hist ++ inbuf[0..n-1]
        la   r5, hist
        la   r6, work
        li   r7, WM1
copy_hist:
        beq  r7, r8, copy_input
        lw   r3, [r5]
        sw   r3, [r6]
        addi r5, r5, 4
        addi r6, r6, 4
        addi r7, r7, -1
        b    copy_hist
copy_input:
        la   r5, inbuf
        mov  r7, r9
copy_in_loop:
        beq  r7, r8, filter
        lw   r3, [r5]
        sw   r3, [r6]
        addi r5, r5, 4
        addi r6, r6, 4
        addi r7, r7, -1
        b    copy_in_loop
filter:
        ; out[i] = (sum of work[i .. i+WINDOW-1]) >> SHIFT
        la   r5, work
        la   r6, outbuf
        mov  r7, r9
filter_loop:
        beq  r7, r8, update_hist
        li   r10, 0
        li   r11, WINDOW
        mov  r12, r5
sum_window:
        beq  r11, r8, window_done
        lw   r3, [r12]
        add  r10, r10, r3
        addi r12, r12, 4
        addi r11, r11, -1
        b    sum_window
window_done:
        shri r10, r10, SHIFT
        sw   r10, [r6]
        addi r6, r6, 4
        addi r5, r5, 4
        addi r7, r7, -1
        b    filter_loop
update_hist:
        ; hist = work[n .. n+WINDOW-2]
        la   r5, work
        shli r3, r9, 2
        add  r5, r5, r3
        la   r6, hist
        li   r7, WM1
hist_loop:
        beq  r7, r8, send
        lw   r3, [r5]
        sw   r3, [r6]
        addi r5, r5, 4
        addi r6, r6, 4
        addi r7, r7, -1
        b    hist_loop
send:
        mov  r0, r4
        la   r1, outbuf
        mov  r2, r9
        sys  34                 ; dev_write the filtered block
        b    loop
isr:
        li   r0, SEM
        sys  19
        sys  48
hist:   .space %d
inbuf:  .space %d
work:   .space %d
outbuf: .space %d
""" % (origin, FILTER_DEVICE_ID, FILTER_SEMAPHORE_ID, window,
       window_minus_1, shift, block_words,
       4 * max(window_minus_1, 1), 4 * block_words,
       4 * (window_minus_1 + block_words), 4 * block_words)


@dataclass
class FilterApp:
    program: Program
    entry: int
    block_words: int
    window: int


def build_filter_app(block_words=16, window=4, origin=0x1000):
    """Assemble the filter application for the given geometry."""
    source = filter_app_source(block_words, window, origin)
    program = assemble(source)
    return FilterApp(program, program.entry, block_words, window)
