"""Host reference for the streaming filter."""

import random

from repro.errors import ReproError


def generate_samples(count, seed=1, amplitude=1000):
    """A deterministic pseudo-signal: ramp + seeded noise, 16-bit."""
    rng = random.Random(seed)
    samples = []
    for index in range(count):
        ramp = (index * 13) % amplitude
        noise = rng.randrange(amplitude // 4)
        samples.append((ramp + noise) & 0xFFFF)
    return samples


def moving_average(samples, window, history=None):
    """Integer moving average with carried history.

    ``y[i] = floor(sum of the last `window` inputs / window)``, where
    inputs before the first sample come from *history* (zeros when
    omitted) — exactly what the guest filter computes.
    """
    if window < 1 or window & (window - 1):
        raise ReproError("window must be a power of two, got %d" % window)
    carried = list(history) if history is not None else [0] * (window - 1)
    if len(carried) != window - 1:
        raise ReproError("history must hold window-1 samples")
    extended = carried + list(samples)
    output = []
    for index in range(len(samples)):
        total = sum(extended[index:index + window])
        output.append(total // window)
    new_history = extended[len(extended) - (window - 1):] \
        if window > 1 else []
    return output, new_history
