"""Builder for the streaming case study (Driver-Kernel scheme)."""

from dataclasses import dataclass
from typing import Optional

from repro.cosim.driver_kernel import DriverKernelScheme
from repro.cosim.metrics import CosimMetrics
from repro.errors import CosimError
from repro.iss.assembler import assemble
from repro.iss.cpu import Cpu
from repro.iss.loader import load_program
from repro.rtos.costs import CostModel
from repro.rtos.driver import CosimPortDriver
from repro.rtos.kernel import RtosKernel
from repro.stream.filter_app import (FILTER_DEVICE_ID,
                                     FILTER_SEMAPHORE_ID,
                                     build_filter_app)
from repro.stream.sink import SAMPLES_OUT_PORT, SampleSink
from repro.stream.source import (FILTER_IRQ_VECTOR, SAMPLES_IN_PORT,
                                 SampleSource)
from repro.sysc.clock import Clock
from repro.sysc.kernel import Kernel
from repro.sysc.simtime import US


@dataclass
class StreamConfig:
    """Parameters of one streaming run."""

    scheme: str = "driver-kernel"   # or "gdb-kernel" (per-sample)
    total_samples: int = 256
    block_words: int = 16
    window: int = 4
    inter_block_delay: int = 5 * US
    clock_period: int = 1 * US
    cpu_hz: int = 100_000_000
    seed: int = 1
    stack_top: int = 0x80000
    rtos_costs: Optional[CostModel] = None


class StreamSystem:
    """The wired-up streaming scenario."""

    def __init__(self, config):
        if config.scheme not in ("driver-kernel", "gdb-kernel"):
            raise CosimError("stream scheme must be driver-kernel or "
                             "gdb-kernel, got %r" % config.scheme)
        self.config = config
        self.kernel = Kernel("stream")
        Clock(config.clock_period, "clk")
        self.metrics = CosimMetrics()
        self.rtos = None
        self.cpu = Cpu(name="dsp0")
        if config.scheme == "driver-kernel":
            self._wire_driver(config)
        else:
            self._wire_gdb(config)

    def _wire_driver(self, config):
        self.sink = SampleSink(config.total_samples, config.block_words,
                               config.window, config.seed)
        self.source = SampleSource(self.sink, config.total_samples,
                                   config.block_words,
                                   config.inter_block_delay, config.seed)
        self.app = build_filter_app(config.block_words, config.window)
        load_program(self.cpu, self.app.program,
                     stack_top=config.stack_top)
        self.rtos = RtosKernel(self.cpu, config.rtos_costs)
        self.rtos.create_semaphore(FILTER_SEMAPHORE_ID)
        self.rtos.create_thread("filter", self.app.entry,
                                config.stack_top)
        self.scheme = DriverKernelScheme(self.kernel, self.metrics)
        context = self.scheme.attach_rtos(
            self.rtos,
            {SAMPLES_IN_PORT: self.source.port,
             SAMPLES_OUT_PORT: self.sink.port},
            config.cpu_hz)
        self.driver = CosimPortDriver(
            FILTER_DEVICE_ID, "filter_dev",
            rx_ports=[SAMPLES_IN_PORT], tx_port=SAMPLES_OUT_PORT,
            irq_vector=FILTER_IRQ_VECTOR,
            data_endpoint=context.data_socket.b)
        self.rtos.register_driver(self.driver)
        self.source.raise_irq = \
            lambda vector: self.scheme.raise_interrupt(context, vector)
        self.scheme.elaborate()

    def _wire_gdb(self, config):
        from repro.cosim.gdb_kernel import GdbKernelScheme
        from repro.cosim.pragmas import build_pragma_map
        from repro.stream.gdb_variant import (PerSampleSink,
                                              PerSampleSource,
                                              SAMPLE_IN_VAR,
                                              SAMPLE_OUT_VAR,
                                              gdb_filter_source)

        self.sink = PerSampleSink(config.total_samples, config.window,
                                  config.seed)
        # Per-sample pacing: spread the block delay over its samples.
        delay = max(1, config.inter_block_delay // config.block_words)
        self.source = PerSampleSource(self.sink, config.total_samples,
                                      delay, config.seed)
        program = assemble(gdb_filter_source(config.window))
        self.app = program
        load_program(self.cpu, program, stack_top=config.stack_top)
        self.scheme = GdbKernelScheme(self.kernel, self.metrics)
        self.scheme.attach_cpu(
            self.cpu, build_pragma_map(program),
            {SAMPLE_IN_VAR: self.source.port,
             SAMPLE_OUT_VAR: self.sink.port},
            config.cpu_hz)
        self.scheme.elaborate()

    @property
    def complete(self):
        return len(self.sink.received) >= self.config.total_samples

    def run(self, duration):
        """Advance the co-simulation by *duration* femtoseconds."""
        return self.kernel.run(duration)

    def throughput_samples_per_ms(self):
        """Filtered samples per simulated millisecond so far."""
        if self.kernel.now == 0:
            return 0.0
        return len(self.sink.received) / (self.kernel.now / 1e12)


def build_stream_system(config=None, **overrides):
    """Build a StreamSystem from a config or keyword overrides."""
    if config is None:
        config = StreamConfig(**overrides)
    return StreamSystem(config)
