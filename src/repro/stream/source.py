"""The SystemC sample source."""

from repro.cosim.ports import IssOutPort
from repro.stream.reference import generate_samples
from repro.sysc.module import Module

SAMPLES_IN_PORT = "samples_in"
FILTER_IRQ_VECTOR = 6


class SampleSource(Module):
    """Streams sample blocks to the guest filter.

    One block is posted (as a byte payload of little-endian words) and
    announced with an interrupt; the next block follows after
    *inter_block_delay* once the sink has confirmed the filtered block
    came back — the same handshaked streaming a real double-buffered
    DMA front-end would do.
    """

    def __init__(self, sink, total_samples, block_words,
                 inter_block_delay, seed=1, raise_irq=None, kernel=None):
        super().__init__("source", kernel)
        self.sink = sink
        self.block_words = block_words
        self.inter_block_delay = inter_block_delay
        self.raise_irq = raise_irq
        self.port = IssOutPort(SAMPLES_IN_PORT, SAMPLES_IN_PORT, kernel)
        self.samples = generate_samples(total_samples, seed)
        self.blocks_sent = 0
        self.samples_sent = 0
        self.thread(self._stream, name="stream")

    def _stream(self):
        position = 0
        while position < len(self.samples):
            block = self.samples[position:position + self.block_words]
            payload = b"".join(sample.to_bytes(4, "little")
                               for sample in block)
            self.port.post(payload)
            self.raise_irq(FILTER_IRQ_VECTOR)
            self.blocks_sent += 1
            self.samples_sent += len(block)
            position += len(block)
            while self.sink.blocks_received < self.blocks_sent:
                yield self.sink.block_event
            yield self.inter_block_delay
