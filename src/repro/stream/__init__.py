"""Second case study: a streaming DSP offload.

Where the router (:mod:`repro.router`) is request/response — one
checksum per packet — this system streams *blocks* of samples through
guest software: a SystemC sample source posts blocks to the ISS, the
guest runs a moving-average filter (integer, window a power of two,
with history carried across block boundaries), and a SystemC sink
verifies every output word against the host reference.

It exercises parts of the co-simulation the router does not: multi-word
block payloads in both directions of the Section 4.2 message protocol,
sustained back-to-back streaming, and guest-side state spanning
transfers.
"""

from repro.stream.reference import moving_average, generate_samples
from repro.stream.source import SampleSource
from repro.stream.sink import SampleSink
from repro.stream.filter_app import filter_app_source, build_filter_app
from repro.stream.system import StreamConfig, StreamSystem, build_stream_system

__all__ = [
    "moving_average", "generate_samples", "SampleSource", "SampleSink",
    "filter_app_source", "build_filter_app", "StreamConfig",
    "StreamSystem", "build_stream_system",
]
