"""Guest trap (SYS) dispatch.

The ``sys imm16`` instruction transfers control to a host-registered
handler.  The RTOS layer registers its kernel entry points here; the
bare-metal runtime registers a tiny set of host services (console
output, program exit).  A handler receives the CPU and may return an
``int`` of *extra guest cycles* to charge — that is how RTOS service
cost is accounted in guest time (the mechanism behind Figure 7).
"""

from repro.errors import GuestFault

# Well-known trap numbers used by the bundled runtimes.
SYS_EXIT = 0
SYS_PUTCHAR = 1
SYS_YIELD = 16
SYS_SLEEP = 17
SYS_SEM_WAIT = 18
SYS_SEM_POST = 19
SYS_MBOX_PUT = 20
SYS_MBOX_GET = 21
SYS_GETTIME = 22
SYS_DEV_OPEN = 32
SYS_DEV_READ = 33
SYS_DEV_WRITE = 34
SYS_DEV_IOCTL = 35
SYS_IRET = 48


class SyscallTable:
    """Trap number -> handler registry for one CPU."""

    def __init__(self):
        self._handlers = {}
        self.call_counts = {}

    def register(self, number, handler, name=None):
        """Register *handler(cpu)* for trap *number*."""
        self._handlers[number] = (handler, name or getattr(
            handler, "__name__", "sys_%d" % number))
        return handler

    def unregister(self, number):
        """Remove the handler for trap *number* (no-op if absent)."""
        self._handlers.pop(number, None)

    def registered(self, number):
        """True when a handler exists for trap *number*."""
        return number in self._handlers

    def dispatch(self, cpu, number):
        """Invoke the handler; returns extra cycles to charge (int)."""
        entry = self._handlers.get(number)
        if entry is None:
            raise GuestFault(
                "guest executed SYS %d at pc=0x%08x with no handler"
                % (number, cpu.pc)
            )
        handler, name = entry
        self.call_counts[name] = self.call_counts.get(name, 0) + 1
        extra = handler(cpu)
        return extra if isinstance(extra, int) else 0
