"""A simple textual image format for guest programs.

Lets assembled programs be saved and distributed without re-running
the assembler — each line is ``@<hex address>`` (set the cursor) or
hex bytes; ``#`` starts a comment.  A header comment records the entry
point, which :func:`load_hex` restores.

Example::

    # repro image, entry 0x1000
    @00001000
    13 00 00 00 1A 04 00 00
"""

from repro.errors import IssError
from repro.iss.assembler import Program
from repro.iss.symbols import SymbolTable

_BYTES_PER_LINE = 16
_ENTRY_PREFIX = "# entry "


def dump_hex(program):
    """Serialise a :class:`Program`'s memory image to text."""
    lines = ["# repro guest image", _ENTRY_PREFIX + "0x%08x"
             % program.entry]
    for address, data in sorted(program.chunks):
        lines.append("@%08x" % address)
        for offset in range(0, len(data), _BYTES_PER_LINE):
            chunk = data[offset:offset + _BYTES_PER_LINE]
            lines.append(" ".join("%02x" % byte for byte in chunk))
    return "\n".join(lines) + "\n"


def load_hex(text):
    """Parse image text back into a :class:`Program`.

    Symbols are not part of the image (like any binary format); the
    returned program has an empty symbol table.
    """
    entry = 0
    chunks = []
    cursor = None
    pending = bytearray()

    def flush():
        nonlocal pending, cursor
        if pending:
            chunks.append((cursor - len(pending), bytes(pending)))
            pending = bytearray()

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if line.startswith(_ENTRY_PREFIX):
            entry = int(line[len(_ENTRY_PREFIX):], 16)
            continue
        if not line or line.startswith("#"):
            continue
        if line.startswith("@"):
            flush()
            cursor = int(line[1:], 16)
            continue
        if cursor is None:
            raise IssError("hex image line %d: data before any @address"
                           % line_number)
        try:
            data = bytes(int(token, 16) for token in line.split())
        except ValueError:
            raise IssError("hex image line %d: bad byte in %r"
                           % (line_number, line))
        pending.extend(data)
        cursor += len(data)
    flush()
    if not chunks:
        raise IssError("hex image contains no data")
    return Program(entry, chunks, SymbolTable())


def save_hex(program, path):
    """Serialise *program* to a hex image file."""
    with open(path, "w") as handle:
        handle.write(dump_hex(program))


def read_hex(path):
    """Read and parse a hex image file."""
    with open(path) as handle:
        return load_hex(handle.read())
