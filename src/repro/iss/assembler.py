"""Two-pass assembler for the R32 ISA.

Syntax overview::

    ; comment            # comment
    label:
        li   r0, 42          ; 16-bit signed immediates
        la   r1, buffer      ; pseudo: lui+ori, any 32-bit address
        lw   r2, [r1 + 4]    ; loads/stores use [base +/- offset]
        sw   r2, [r1]
        beq  r0, r2, done    ; branch targets are labels
        call subroutine      ; pseudo: jal
        ret                  ; pseudo: jr r14
    buffer: .word 0, 1, 2
    msg:    .asciz "hello"
            .byte 1, 2, 3
            .space 64
            .org  0x400
            .equ  LIMIT, 100

Co-simulation pragmas (paper Section 3.2) are comments of the form
``;#pragma iss_in <variable>`` / ``;#pragma iss_out <variable>`` placed
before the statement that touches the variable; they are collected into
:attr:`Program.pragmas` for :mod:`repro.cosim.pragmas` to process.
"""

import re
from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.iss import isa
from repro.iss.symbols import SymbolTable

_PRAGMA_RE = re.compile(r"^[;#]\s*#?pragma\s+(iss_in|iss_out)\s+(\w+)\s*$")
_LABEL_RE = re.compile(r"^([A-Za-z_]\w*):\s*(.*)$")
_MEM_RE = re.compile(
    r"^\[\s*(r\d+|sp|lr)\s*(?:([+-])\s*([^\]]+?))?\s*\]$"
)

# Pseudo-instructions and their expanded size in bytes.
_PSEUDO_SIZES = {"la": 8, "li32": 8, "ret": 4, "call": 4, "b": 4}

_REG_ALIASES = {"sp": 13, "lr": 14}


@dataclass
class Pragma:
    """A co-simulation pragma found in the source."""

    line: int        # 1-based source line of the pragma itself
    kind: str        # "iss_in" or "iss_out"
    variable: str


@dataclass
class Program:
    """The output of :func:`assemble`."""

    entry: int
    chunks: list            # list of (address, bytes)
    symbols: SymbolTable
    pragmas: list = field(default_factory=list)
    source: str = ""

    @property
    def size(self):
        return sum(len(data) for __, data in self.chunks)

    def flatten(self):
        """All bytes as one (base_address, bytes) image."""
        if not self.chunks:
            return 0, b""
        base = min(addr for addr, __ in self.chunks)
        end = max(addr + len(data) for addr, data in self.chunks)
        image = bytearray(end - base)
        for addr, data in self.chunks:
            image[addr - base:addr - base + len(data)] = data
        return base, bytes(image)


def _parse_register(token, line):
    token = token.strip().lower()
    if token in _REG_ALIASES:
        return _REG_ALIASES[token]
    if token.startswith("r") and token[1:].isdigit():
        index = int(token[1:])
        if 0 <= index <= 15:
            return index
    raise AssemblerError("line %d: bad register %r" % (line, token))


def _parse_int(token, line):
    token = token.strip()
    try:
        if len(token) == 3 and token[0] == token[2] == "'":
            return ord(token[1])
        return int(token, 0)
    except ValueError:
        raise AssemblerError("line %d: bad integer %r" % (line, token))


class _Expr:
    """A (symbol, offset) expression resolved in pass 2."""

    def __init__(self, symbol, offset=0):
        self.symbol = symbol
        self.offset = offset

    def resolve(self, symbols):
        return symbols.resolve(self.symbol) + self.offset


def _parse_value(token, line):
    """An integer literal, or a symbol[+/-offset] expression."""
    token = token.strip()
    match = re.match(r"^([A-Za-z_]\w*)\s*(?:([+-])\s*(\w+))?$", token)
    if match and not (token.lstrip("+-").isdigit() or token.startswith("0x")):
        symbol, sign, offset_text = match.groups()
        offset = 0
        if offset_text is not None:
            offset = _parse_int(offset_text, line)
            if sign == "-":
                offset = -offset
        return _Expr(symbol, offset)
    return _parse_int(token, line)


def _split_operands(text, line):
    """Split an operand string on top-level commas (not inside [])."""
    operands, depth, current = [], 0, []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            operands.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        operands.append(tail)
    if depth != 0:
        raise AssemblerError("line %d: unbalanced brackets" % line)
    return operands


def _parse_mem_operand(token, line):
    """``[base]``, ``[base + off]``, ``[base - off]`` -> (reg, value)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblerError("line %d: bad memory operand %r" % (line, token))
    base_token, sign, offset_text = match.groups()
    base = _parse_register(base_token, line)
    if offset_text is None:
        return base, 0
    value = _parse_value(offset_text, line)
    if sign == "-":
        if isinstance(value, _Expr):
            raise AssemblerError(
                "line %d: negative symbolic offsets are not supported" % line
            )
        value = -value
    return base, value


@dataclass
class _Item:
    """One assembled item (instruction, pseudo or data) from pass 1."""

    line: int
    address: int
    kind: str          # "insn", "pseudo", "data"
    mnemonic: str = ""
    operands: tuple = ()
    data: bytes = b""


def _resolve(value, symbols):
    return value.resolve(symbols) if isinstance(value, _Expr) else value


class _Assembler:
    def __init__(self, source, origin):
        self.source = source
        self.origin = origin
        self.symbols = SymbolTable()
        self.pragmas = []
        self.items = []
        self.location = origin
        self.entry = origin
        self._pending_label = None

    # -- pass 1 -------------------------------------------------------------

    def scan(self):
        for number, raw in enumerate(self.source.splitlines(), start=1):
            self._scan_line(number, raw)

    def _scan_line(self, number, raw):
        stripped = raw.strip()
        pragma = _PRAGMA_RE.match(stripped)
        if pragma:
            self.pragmas.append(Pragma(number, pragma.group(1), pragma.group(2)))
            return
        code = self._strip_comment(stripped)
        if not code:
            return
        label_match = _LABEL_RE.match(code)
        if label_match:
            name, rest = label_match.groups()
            self.symbols.define_label(name, self.location)
            self._pending_label = name
            code = rest.strip()
            if not code:
                return
        if code.startswith("."):
            self._scan_directive(number, code)
            return
        self._scan_instruction(number, code)

    @staticmethod
    def _strip_comment(text):
        for index, char in enumerate(text):
            if char in ";#":
                return text[:index].strip()
            if char == '"':
                # Don't strip inside string literals; find closing quote.
                closing = text.find('"', index + 1)
                if closing == -1:
                    return text
                continue
        return text

    def _scan_directive(self, number, code):
        parts = code.split(None, 1)
        directive = parts[0].lower()
        argument = parts[1] if len(parts) > 1 else ""
        if directive == ".org":
            self.location = _parse_int(argument, number)
        elif directive == ".align":
            boundary = _parse_int(argument, number)
            if boundary <= 0 or boundary & (boundary - 1):
                raise AssemblerError(
                    "line %d: .align needs a power of two" % number)
            padding = -self.location % boundary
            if padding:
                self._emit_data(number, bytes(padding))
        elif directive == ".equ":
            operands = _split_operands(argument, number)
            if len(operands) != 2:
                raise AssemblerError("line %d: .equ needs name, value" % number)
            self.symbols.define_constant(operands[0],
                                         _parse_int(operands[1], number))
        elif directive == ".entry":
            # Entry point symbol is resolved in pass 2.
            self._entry_expr = _parse_value(argument, number)
        elif directive == ".word":
            values = [_parse_value(tok, number)
                      for tok in _split_operands(argument, number)]
            self._emit_data(number, b"", word_values=values)
        elif directive == ".byte":
            values = [_parse_int(tok, number)
                      for tok in _split_operands(argument, number)]
            self._emit_data(number, bytes(v & 0xFF for v in values))
        elif directive == ".space":
            self._emit_data(number, bytes(_parse_int(argument, number)))
        elif directive in (".ascii", ".asciz"):
            text = argument.strip()
            if len(text) < 2 or text[0] != '"' or text[-1] != '"':
                raise AssemblerError("line %d: %s needs a quoted string"
                                     % (number, directive))
            payload = (text[1:-1].encode("latin-1")
                       .decode("unicode_escape").encode("latin-1"))
            if directive == ".asciz":
                payload += b"\x00"
            self._emit_data(number, payload)
        else:
            raise AssemblerError("line %d: unknown directive %r"
                                 % (number, directive))

    def _emit_data(self, number, payload, word_values=None):
        if word_values is not None:
            size = 4 * len(word_values)
            item = _Item(number, self.location, "data",
                         mnemonic=".word", operands=tuple(word_values))
        else:
            size = len(payload)
            item = _Item(number, self.location, "data", data=payload)
        self.items.append(item)
        if self._pending_label:
            self.symbols.define_data(self._pending_label, self.location, size)
            self._pending_label = None
        self.location += size

    def _scan_instruction(self, number, code):
        parts = code.split(None, 1)
        mnemonic = parts[0].lower()
        operand_text = parts[1] if len(parts) > 1 else ""
        operands = tuple(_split_operands(operand_text, number)) \
            if operand_text else ()
        if mnemonic in _PSEUDO_SIZES:
            kind, size = "pseudo", _PSEUDO_SIZES[mnemonic]
        elif mnemonic in isa.OPS_BY_NAME:
            kind, size = "insn", isa.INSTRUCTION_BYTES
        else:
            raise AssemblerError("line %d: unknown mnemonic %r"
                                 % (number, mnemonic))
        self.symbols.record_line(number, self.location)
        self.items.append(_Item(number, self.location, kind,
                                mnemonic=mnemonic, operands=operands))
        self._pending_label = None
        self.location += size

    # -- pass 2 -------------------------------------------------------------

    def emit(self):
        chunks = []
        for item in self.items:
            if item.kind == "data":
                payload = item.data
                if item.mnemonic == ".word":
                    payload = b"".join(
                        (_resolve(v, self.symbols) & 0xFFFFFFFF)
                        .to_bytes(4, "little")
                        for v in item.operands
                    )
                chunks.append((item.address, payload))
            else:
                words = self._encode_item(item)
                payload = b"".join(w.to_bytes(4, "little") for w in words)
                chunks.append((item.address, payload))
        entry = self.origin
        if hasattr(self, "_entry_expr"):
            entry = _resolve(self._entry_expr, self.symbols)
        return Program(entry, chunks, self.symbols, self.pragmas, self.source)

    def _encode_item(self, item):
        try:
            return self._encode_item_inner(item)
        except AssemblerError:
            raise
        except Exception as exc:
            hint = ""
            if item.mnemonic == "li" and "does not fit" in str(exc):
                hint = " (use li32 for values beyond 16 signed bits)"
            raise AssemblerError("line %d: %s%s" % (item.line, exc, hint))

    def _encode_item_inner(self, item):
        mnemonic, operands, line = item.mnemonic, item.operands, item.line
        if item.kind == "pseudo":
            return self._encode_pseudo(item)
        spec = isa.OPS_BY_NAME[mnemonic]
        fmt = spec.fmt
        if fmt == isa.FMT_NONE:
            self._expect(operands, 0, line)
            return [isa.encode(mnemonic)]
        if fmt == isa.FMT_SYS:
            self._expect(operands, 1, line)
            value = _resolve(_parse_value(operands[0], line), self.symbols)
            return [isa.encode(mnemonic, imm=value)]
        if fmt == isa.FMT_R3:
            self._expect(operands, 3, line)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               rs1=_parse_register(operands[1], line),
                               rs2=_parse_register(operands[2], line))]
        if fmt == isa.FMT_R2:
            self._expect(operands, 2, line)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               rs1=_parse_register(operands[1], line))]
        if fmt == isa.FMT_R1:
            self._expect(operands, 1, line)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line))]
        if fmt == isa.FMT_RI:
            self._expect(operands, 3, line)
            value = _resolve(_parse_value(operands[2], line), self.symbols)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               rs1=_parse_register(operands[1], line),
                               imm=value)]
        if fmt == isa.FMT_RI2:
            self._expect(operands, 2, line)
            value = _resolve(_parse_value(operands[1], line), self.symbols)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               imm=value)]
        if fmt in (isa.FMT_MEM, isa.FMT_MEMS):
            self._expect(operands, 2, line)
            base, offset = _parse_mem_operand(operands[1], line)
            offset = _resolve(offset, self.symbols)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               rs1=base, imm=offset)]
        if fmt == isa.FMT_BRANCH:
            self._expect(operands, 3, line)
            target = _resolve(_parse_value(operands[2], line), self.symbols)
            offset = self._word_offset(target, item.address, line)
            return [isa.encode(mnemonic,
                               rd=_parse_register(operands[0], line),
                               rs1=_parse_register(operands[1], line),
                               imm=offset)]
        if fmt == isa.FMT_JUMP:
            self._expect(operands, 1, line)
            target = _resolve(_parse_value(operands[0], line), self.symbols)
            offset = self._word_offset(target, item.address, line)
            return [isa.encode(mnemonic, imm=offset)]
        raise AssemblerError("line %d: unhandled format %r" % (line, fmt))

    def _encode_pseudo(self, item):
        mnemonic, operands, line = item.mnemonic, item.operands, item.line
        if mnemonic == "ret":
            self._expect(operands, 0, line)
            return [isa.encode("jr", rd=14)]
        if mnemonic == "call":
            self._expect(operands, 1, line)
            target = _resolve(_parse_value(operands[0], line), self.symbols)
            offset = self._word_offset(target, item.address, line)
            return [isa.encode("jal", imm=offset)]
        if mnemonic == "b":
            self._expect(operands, 1, line)
            target = _resolve(_parse_value(operands[0], line), self.symbols)
            offset = self._word_offset(target, item.address, line)
            return [isa.encode("jmp", imm=offset)]
        if mnemonic in ("la", "li32"):
            self._expect(operands, 2, line)
            rd = _parse_register(operands[0], line)
            value = _resolve(_parse_value(operands[1], line), self.symbols)
            value &= 0xFFFFFFFF
            return [isa.encode("lui", rd=rd, imm=(value >> 16) & 0xFFFF),
                    isa.encode("ori", rd=rd, rs1=rd, imm=value & 0xFFFF)]
        raise AssemblerError("line %d: unknown pseudo %r" % (line, mnemonic))

    @staticmethod
    def _expect(operands, count, line):
        if len(operands) != count:
            raise AssemblerError(
                "line %d: expected %d operands, got %d"
                % (line, count, len(operands))
            )

    @staticmethod
    def _word_offset(target, address, line):
        delta = target - (address + isa.INSTRUCTION_BYTES)
        if delta % isa.INSTRUCTION_BYTES:
            raise AssemblerError(
                "line %d: branch target 0x%x not word-aligned" % (line, target)
            )
        return delta // isa.INSTRUCTION_BYTES


def assemble(source, origin=0):
    """Assemble *source* text into a :class:`Program` based at *origin*."""
    worker = _Assembler(source, origin)
    worker.scan()
    return worker.emit()
