"""Execution tracing and profiling.

Two observers attachable to a CPU:

- :class:`InstructionTracer` — a bounded ring of the most recent
  (pc, disassembly) pairs, for post-mortem debugging of guest code;
- :class:`CycleProfiler` — per-address cycle and execution counts,
  aggregated to symbols on demand: the "software timing analysis"
  workflow that HW/SW co-simulation enables (Liu et al., CODES'98 —
  reference [11] of the paper).

Observers cost one callback per retired instruction, so they are
opt-in: attach with :meth:`repro.iss.cpu.Cpu.attach_observer`.

:class:`BlockProfiler` is different: it is not an observer but the
always-on execution-count profiler of the block dispatch loop — one
dict bump per *block* entry, not per instruction — whose counts drive
superblock promotion (:mod:`repro.iss.superblocks`) and the
``profile.hot_blocks`` section of BENCH records.
"""

from collections import deque

from repro.iss.disasm import disassemble_word

#: Block-entry count at which a block start is promoted to a
#: superblock.  Low enough that steady-state loops promote almost
#: immediately, high enough that one-shot code never pays a chain
#: compile.
HOT_THRESHOLD = 16


class BlockProfiler:
    """Execution counts by block start pc, driving tier promotion.

    The counts are a deterministic function of guest execution (the
    dispatch loop bumps them on every block entry), so they replay
    identically across serial/parallel runs and are serialized into
    checkpoints: a restored CPU promotes the same superblocks at the
    same points a straight-through run would.
    """

    __slots__ = ("counts", "hot_threshold")

    def __init__(self, hot_threshold=HOT_THRESHOLD):
        self.counts = {}
        self.hot_threshold = hot_threshold

    def note_entry(self, pc):
        """Count one entry at *pc*; True when the block is hot."""
        count = self.counts.get(pc, 0) + 1
        self.counts[pc] = count
        return count >= self.hot_threshold

    def hot_blocks(self, top=10):
        """The *top* block starts by entry count, as (pc, count).

        Ordered by descending count then ascending pc, so the ranking
        is deterministic under ties.
        """
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:top]

    def state(self):
        """The counts in canonical serializable form: [[pc, count]]."""
        return [[pc, count] for pc, count in sorted(self.counts.items())]

    def restore(self, state):
        """Reinstall counts captured by :meth:`state`."""
        self.counts = {int(pc): int(count) for pc, count in state}


class InstructionTracer:
    """Ring buffer of recently executed instructions."""

    def __init__(self, capacity=64):
        self.capacity = capacity
        self._ring = deque(maxlen=capacity)
        self.total = 0

    def on_retire(self, cpu, pc, decoded, cycles):
        """Retire callback: record (pc, instruction word)."""
        self.total += 1
        word = int.from_bytes(cpu.memory.read_bytes(pc, 4), "little")
        self._ring.append((pc, word))

    def entries(self):
        """The trace as (pc, disassembly-text) pairs, oldest first."""
        return [(pc, disassemble_word(word, pc))
                for pc, word in self._ring]

    def format(self):
        """The trace ring as 'address  disassembly' lines."""
        return "\n".join("0x%08x  %s" % entry for entry in self.entries())


class CycleProfiler:
    """Per-address cycle/instruction accounting."""

    def __init__(self):
        self.cycles_by_pc = {}
        self.counts_by_pc = {}
        self.total_cycles = 0
        self.total_instructions = 0

    def on_retire(self, cpu, pc, decoded, cycles):
        """Retire callback: accumulate cycles/counts for this pc."""
        self.cycles_by_pc[pc] = self.cycles_by_pc.get(pc, 0) + cycles
        self.counts_by_pc[pc] = self.counts_by_pc.get(pc, 0) + 1
        self.total_cycles += cycles
        self.total_instructions += 1

    def hot_addresses(self, top=10):
        """The *top* addresses by cycles, as (pc, cycles, count)."""
        ranked = sorted(self.cycles_by_pc.items(), key=lambda kv: -kv[1])
        return [(pc, cycles, self.counts_by_pc[pc])
                for pc, cycles in ranked[:top]]

    def by_symbol(self, symbols):
        """Aggregate cycles per label region.

        Addresses are attributed to the nearest preceding code label,
        giving a flat function-level profile.
        """
        if not symbols.labels:
            return {}
        boundaries = sorted(symbols.labels.items(), key=lambda kv: kv[1])
        totals = {}
        for pc, cycles in self.cycles_by_pc.items():
            owner = None
            for name, address in boundaries:
                if address <= pc:
                    owner = name
                else:
                    break
            if owner is not None:
                totals[owner] = totals.get(owner, 0) + cycles
        return totals

    def format_by_symbol(self, symbols):
        """The per-symbol profile as aligned text with shares."""
        totals = self.by_symbol(symbols)
        lines = []
        for name, cycles in sorted(totals.items(), key=lambda kv: -kv[1]):
            share = 100.0 * cycles / max(1, self.total_cycles)
            lines.append("%-20s %10d cycles  %5.1f%%"
                         % (name, cycles, share))
        return "\n".join(lines)
