"""The R32 processor core.

A fetch/decode/execute interpreter with:

- per-instruction cycle accounting (see :mod:`repro.iss.isa` costs);
- a decode cache keyed by address (flushed when the debugger writes
  code memory);
- GDB-style breakpoints (stop *before* the instruction) and
  watchpoints (stop *after* the access);
- an external interrupt line with an enable flag — delivery itself is
  performed by the host RTOS layer (:mod:`repro.rtos.interrupts`), the
  core only *stops* when an enabled interrupt is pending;
- a trap (SYS) interface dispatching to host-registered handlers.
"""

import enum

from repro.errors import GuestFault, IssError
from repro.iss import blocks as _blocks
from repro.iss import superblocks as _superblocks
from repro.iss import isa
from repro.obs.tracer import NULL_TRACER
from repro.iss.breakpoints import BreakpointSet
from repro.iss.memory import Memory
from repro.iss.profile import BlockProfiler
from repro.iss.syscalls import SyscallTable

NUM_REGS = isa.NUM_REGS
REG_SP = isa.REG_SP
REG_LR = isa.REG_LR

_WORD = isa.WORD_MASK

_signed = isa.to_signed32

_BRANCHES = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: _signed(a) < _signed(b),
    "bge": lambda a, b: _signed(a) >= _signed(b),
    "bltu": lambda a, b: a < b,
    "bgeu": lambda a, b: a >= b,
}


#: The ISS execution tiers, slowest to fastest (docs/performance.md):
#: the reference interpreter, closure-compiled basic blocks, and
#: profile-promoted superblocks.  All three are observationally
#: equivalent; ``Cpu.tier`` selects one.
TIERS = ("interp", "blocks", "superblocks")


class StopReason(enum.Enum):
    """Why a run() call returned."""
    HALT = "halt"
    BREAKPOINT = "breakpoint"
    WATCHPOINT = "watchpoint"
    INTERRUPT = "interrupt"
    WFI = "wfi"
    CYCLE_LIMIT = "cycle_limit"
    INSTRUCTION_LIMIT = "instruction_limit"


class Cpu:
    """One R32 core attached to a :class:`~repro.iss.memory.Memory`."""

    def __init__(self, memory=None, name="cpu0"):
        self.name = name
        self.memory = memory if memory is not None else Memory()
        self.regs = [0] * NUM_REGS
        self.pc = 0
        self.cycles = 0
        self.instructions = 0
        self.halted = False
        self.waiting = False            # parked by WFI
        self.exit_code = None
        self.breakpoints = BreakpointSet()
        self.syscalls = SyscallTable()
        self.irq_pending = False
        self.irq_vector = 0             # informational; host RTOS delivers
        self.interrupts_enabled = False
        self.tracer = NULL_TRACER
        self._decode_cache = {}
        self._decoded_pages = {}        # code page -> decoded addresses
        self._block_cache = {}          # start pc -> BasicBlock
        self._blocks_by_page = {}       # code page -> block start pcs
        self._code_dirty = False        # guest stored into cached code
        self.use_blocks = True          # closure-block fast path enabled
        self.use_superblocks = False    # profile-promoted superblock tier
        self.block_trace = False        # opt-in iss/*_compile events
        self.blocks_compiled = 0
        self.block_hits = 0
        self.block_invalidations = 0
        self.block_profiler = BlockProfiler()
        self._superblock_cache = {}     # start pc -> Superblock
        self._superblocks_by_page = {}  # code page -> superblock start pcs
        self._superblock_failed = set()  # hot pcs where no chain forms
        self.superblocks_compiled = 0
        self.superblock_exits = 0
        self.superblock_invalidations = 0
        self.superblock_side_exits = 0  # exits through a guard, not the end
        self.side_exit_sites = {}       # superblock start pc -> side exits
        self._icache = None             # optional timing models
        self._dcache = None
        self._observers = []            # retire-callback observers
        self._resume_skip = None        # bp address we are stepping past
        self._watch_hit = None          # (watchpoint, address, value, is_write)
        self._last_stop = None
        self._remote = None             # process-backend execution proxy
        self._attrib = None             # wall-time attribution profiler
        self.memory.add_code_listener(self._on_code_store)
        self.breakpoints.on_code_change = self._on_breakpoints_changed

    def __repr__(self):
        return "Cpu(%r, pc=0x%08x, cycles=%d)" % (self.name, self.pc, self.cycles)

    # -- register helpers ----------------------------------------------------

    @property
    def sp(self):
        return self.regs[REG_SP]

    @sp.setter
    def sp(self, value):
        self.regs[REG_SP] = value & _WORD

    @property
    def lr(self):
        return self.regs[REG_LR]

    @lr.setter
    def lr(self, value):
        self.regs[REG_LR] = value & _WORD

    def read_reg(self, index):
        """Read general-purpose register *index*."""
        return self.regs[index]

    def write_reg(self, index, value):
        """Write general-purpose register *index* (masked to 32 bits)."""
        self.regs[index] = value & _WORD

    # -- execution tiers -------------------------------------------------------

    @property
    def tier(self):
        """The active execution tier name (one of :data:`TIERS`)."""
        if not self.use_blocks:
            return "interp"
        return "superblocks" if self.use_superblocks else "blocks"

    @tier.setter
    def tier(self, value):
        if value not in TIERS:
            raise IssError("unknown execution tier %r (one of %s)"
                           % (value, ", ".join(TIERS)))
        self.use_blocks = value != "interp"
        self.use_superblocks = value == "superblocks"

    # -- debugger-facing helpers ----------------------------------------------

    def flush_decode_cache(self):
        """Must be called after writing code memory from the host."""
        if self._remote is not None:
            # The worker owns the live caches; it flushes (and counts
            # the invalidations) before its next run, exactly when a
            # serial CPU's flushed cache would next matter.
            self._remote.pending_flush = True
        self._decode_cache.clear()
        self._decoded_pages.clear()
        if self._block_cache:
            self.block_invalidations += len(self._block_cache)
            self._block_cache.clear()
        self._blocks_by_page.clear()
        if self._superblock_cache:
            self.superblock_invalidations += len(self._superblock_cache)
            self._superblock_cache.clear()
        self._superblocks_by_page.clear()
        self._superblock_failed.clear()
        self._code_dirty = True

    def _on_code_store(self, address):
        """Guest store hit a page holding decoded code: invalidate it.

        Registered with :meth:`Memory.add_code_listener`; fixes the
        self-modifying-code staleness bug where a guest ``sw``/``sb``
        into a ``_decode_cache`` address kept executing the stale
        decode.  Invalidation is word-precise: data that merely shares
        a 256-byte page with code (a common layout — constants after a
        loop) does not thrash the caches, only a store overlapping a
        decoded instruction pays.
        """
        word = address & ~3
        page = address >> 8
        decoded = self._decoded_pages.get(page)
        if decoded and word in decoded:
            decoded.discard(word)
            self._decode_cache.pop(word, None)
            if not decoded:
                del self._decoded_pages[page]
            self._code_dirty = True
        starts = self._blocks_by_page.get(page)
        if starts:
            dead = [start for start in starts
                    if self._block_cache[start].covers(word)]
            for start in dead:
                self._drop_block(start)
            if dead:
                self._code_dirty = True
        sb_starts = self._superblocks_by_page.get(page)
        if sb_starts:
            dead = [start for start in sb_starts
                    if self._superblock_cache[start].covers(word)]
            for start in dead:
                self._drop_superblock(start)
            if dead:
                # The stored word may re-chain differently now; retry
                # any promotion that previously failed to form a chain.
                self._superblock_failed.clear()
                self._code_dirty = True

    def _drop_block(self, start):
        """Evict one compiled block and its page-index entries."""
        block = self._block_cache.pop(start, None)
        if block is None:
            return
        self.block_invalidations += 1
        for page in range(block.start >> 8, ((block.end - 1) >> 8) + 1):
            starts = self._blocks_by_page.get(page)
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del self._blocks_by_page[page]

    def _drop_superblock(self, start):
        """Evict one superblock and its page-index entries."""
        superblock = self._superblock_cache.pop(start, None)
        if superblock is None:
            return
        self.superblock_invalidations += 1
        for page in superblock.pages:
            starts = self._superblocks_by_page.get(page)
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del self._superblocks_by_page[page]
        if self.block_trace and self.tracer.enabled:
            self.tracer.emit("iss", "superblock_invalidate",
                             scope=self.name, pc=start)

    def _on_breakpoints_changed(self, address):
        """Drop compiled blocks so a new mid-block breakpoint is honored."""
        if self._block_cache:
            self.block_invalidations += len(self._block_cache)
            self._block_cache.clear()
            self._blocks_by_page.clear()
        if self._superblock_cache:
            # A superblock may chain *through* the new breakpoint
            # address even when no single block covers it; the chain
            # rule (never chain onto a breakpoint) must be re-applied.
            self.superblock_invalidations += len(self._superblock_cache)
            self._superblock_cache.clear()
            self._superblocks_by_page.clear()
        self._superblock_failed.clear()
        self._code_dirty = True

    def attach_tracer(self, tracer):
        """Route this core's stop/breakpoint events to *tracer*.

        Per-instruction tracing stays opt-in via an
        :class:`~repro.obs.tracer.Tracer`-backed retire observer (see
        :func:`instruction_observer`); the core itself only emits at
        stop boundaries so tracing cannot slow the fetch loop.
        """
        self.tracer = tracer
        self.breakpoints.tracer = tracer
        self.breakpoints.owner = self.name
        return tracer

    def attach_observer(self, observer):
        """Attach a retire observer (tracer/profiler); returns it.

        The observer's ``on_retire(cpu, pc, decoded, cycles)`` is
        called once per retired instruction.
        """
        self._observers.append(observer)
        return observer

    def detach_observer(self, observer):
        """Remove a retire observer."""
        self._observers.remove(observer)

    def attach_icache(self, cache):
        """Install an instruction-cache timing model; returns it."""
        self._icache = cache
        return cache

    def attach_dcache(self, cache):
        """Install a data-cache timing model; returns it."""
        self._dcache = cache
        return cache

    @property
    def icache(self):
        return self._icache

    @property
    def dcache(self):
        return self._dcache

    def raise_irq(self, vector=0):
        """Assert the external interrupt line (host hardware side)."""
        self.irq_pending = True
        self.irq_vector = vector
        # An interrupt wakes a WFI-parked core even before delivery.
        self.waiting = False

    def clear_irq(self):
        """Deassert the external interrupt line."""
        self.irq_pending = False

    def snapshot(self):
        """Capture full architectural state (registers, pc, counters,
        memory) for later :meth:`restore` — checkpoint/replay debugging.

        Host-side attachments (breakpoints, syscall handlers, caches,
        observers) are configuration, not architectural state, and are
        not captured."""
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "halted": self.halted,
            "waiting": self.waiting,
            "exit_code": self.exit_code,
            "interrupts_enabled": self.interrupts_enabled,
            "irq_pending": self.irq_pending,
            "irq_vector": self.irq_vector,
            "memory": bytes(self.memory.data),
        }

    def restore(self, snapshot):
        """Reinstall state captured by :meth:`snapshot`."""
        if len(snapshot["memory"]) != self.memory.size:
            raise IssError(
                "snapshot memory size %d does not match CPU memory %d"
                % (len(snapshot["memory"]), self.memory.size))
        self.regs[:] = snapshot["regs"]
        self.pc = snapshot["pc"]
        self.cycles = snapshot["cycles"]
        self.instructions = snapshot["instructions"]
        self.halted = snapshot["halted"]
        self.waiting = snapshot["waiting"]
        self.exit_code = snapshot["exit_code"]
        self.interrupts_enabled = snapshot["interrupts_enabled"]
        self.irq_pending = snapshot["irq_pending"]
        self.irq_vector = snapshot["irq_vector"]
        self.memory.data[:] = snapshot["memory"]
        self.flush_decode_cache()
        self._resume_skip = None
        self._watch_hit = None

    @property
    def last_stop(self):
        return self._last_stop

    @property
    def watch_hit(self):
        return self._watch_hit

    # -- execution ------------------------------------------------------------

    def _decode_at(self, address):
        decoded = self._decode_cache.get(address)
        if decoded is None:
            word = self.memory.load_word(address)
            self.memory.load_count -= 1   # fetches aren't data accesses
            decoded = isa.decode(word)
            self._decode_cache[address] = decoded
            self._decoded_pages.setdefault(address >> 8, set()).add(address)
            self.memory.watch_code(address)
        return decoded

    def run(self, max_instructions=None, max_cycles=None):
        """Execute until a stop condition; returns a :class:`StopReason`.

        ``max_cycles`` is a *budget* relative to the current cycle
        counter — the unit the co-simulation clock bindings hand out.

        Execution normally takes the closure-compiled basic-block fast
        path (:mod:`repro.iss.blocks`); the legacy per-instruction
        interpreter remains for timing models (icache/dcache), retire
        observers, and as the reference in differential tests (set
        ``use_blocks = False``).  Both paths are observationally
        equivalent.
        """
        attrib = self._attrib
        if attrib is None:
            return self._run_dispatch(max_instructions, max_cycles)
        # Per-tier wall-time attribution (repro.obs.attrib).  The
        # remote proxy's blocking exchange counts as ISS time too —
        # that is what the master host is spending on execution.
        with attrib.measure("iss." + self.tier):
            return self._run_dispatch(max_instructions, max_cycles)

    def _run_dispatch(self, max_instructions=None, max_cycles=None):
        if self._remote is not None:
            return self._remote.run(max_instructions, max_cycles)
        cycle_limit = None if max_cycles is None else self.cycles + max_cycles
        instruction_limit = (None if max_instructions is None
                             else self.instructions + max_instructions)
        self._watch_hit = None
        if (self.use_blocks and self._icache is None
                and self._dcache is None and not self._observers):
            return self._run_blocks(instruction_limit, cycle_limit)
        return self._run_interpreter(instruction_limit, cycle_limit)

    # -- block-compiled fast path ---------------------------------------------

    def _block_at(self, pc):
        """The cached block at *pc*, compiling and indexing on a miss.

        Shared by the dispatch loop and the superblock chain builder
        so both populate the same cache and counters.  Returns None
        for undecodable or MMIO-resident code.
        """
        block = self._block_cache.get(pc)
        if block is not None:
            return block
        block = _blocks.build_block(self, pc)
        if block is None:
            return None
        self.blocks_compiled += 1
        self._block_cache[pc] = block
        for page in range(block.start >> 8, ((block.end - 1) >> 8) + 1):
            self._blocks_by_page.setdefault(page, set()).add(pc)
        if self.block_trace and self.tracer.enabled:
            self.tracer.emit("iss", "block_compile", scope=self.name,
                             pc=pc, count=block.count, end=block.end)
        return block

    def _promote(self, pc):
        """Try to chain a superblock at hot *pc*; returns it or None.

        A failed chain (no second block reachable) is remembered so
        steady-state dispatch pays one set lookup, not a rebuild; the
        failure set is cleared whenever code or breakpoints change.
        """
        if pc in self._superblock_failed:
            return None
        superblock = _superblocks.build_superblock(self, pc)
        if superblock is None:
            self._superblock_failed.add(pc)
            return None
        self.superblocks_compiled += 1
        self._superblock_cache[pc] = superblock
        for page in superblock.pages:
            self._superblocks_by_page.setdefault(page, set()).add(pc)
        if self.block_trace and self.tracer.enabled:
            self.tracer.emit("iss", "superblock_compile", scope=self.name,
                             pc=pc, blocks=len(superblock.block_starts),
                             count=superblock.count)
        return superblock

    def _run_blocks(self, instruction_limit, cycle_limit):
        """Closure-block execution loop (see :mod:`repro.iss.blocks`).

        Halt/irq/breakpoint checks run once per basic block instead of
        once per instruction; the limit checks are hoisted entirely
        when the remaining budget provably covers the whole block.
        Block entries feed the execution-count profiler; on the
        superblock tier, hot starts are promoted to superblocks
        (:mod:`repro.iss.superblocks`) that run whenever the remaining
        budget provably covers the whole chain — otherwise dispatch
        degrades to per-block execution, exactly where quantum
        batching degrades to lock-step.
        """
        block_cache = self._block_cache
        breakpoints = self.breakpoints
        profile_counts = self.block_profiler.counts
        hot_threshold = self.block_profiler.hot_threshold
        use_superblocks = self.use_superblocks
        superblock_cache = self._superblock_cache
        while True:
            if self.halted:
                return self._stop(StopReason.HALT)
            if self.waiting:
                return self._stop(StopReason.WFI)
            if self.irq_pending and self.interrupts_enabled:
                return self._stop(StopReason.INTERRUPT)
            pc = self.pc
            if breakpoints.has_code(pc) and pc != self._resume_skip:
                breakpoints.record_code_hit(pc)
                return self._stop(StopReason.BREAKPOINT)
            self._resume_skip = None
            entries = profile_counts.get(pc, 0) + 1
            profile_counts[pc] = entries
            if use_superblocks and entries >= hot_threshold:
                superblock = superblock_cache.get(pc)
                if superblock is None:
                    superblock = self._promote(pc)
                if superblock is not None and \
                        (instruction_limit is None
                         or instruction_limit - self.instructions
                         >= superblock.count) and \
                        (cycle_limit is None
                         or cycle_limit - self.cycles
                         >= superblock.max_cycles):
                    self._exec_superblock(superblock)
                    if self._watch_hit is not None:
                        return self._stop(StopReason.WATCHPOINT)
                    if instruction_limit is not None and \
                            self.instructions >= instruction_limit:
                        return self._stop(StopReason.INSTRUCTION_LIMIT)
                    if cycle_limit is not None and \
                            self.cycles >= cycle_limit:
                        return self._stop(StopReason.CYCLE_LIMIT)
                    continue
            block = block_cache.get(pc)
            if block is None:
                block = self._block_at(pc)
                if block is None:
                    # Undecodable or MMIO-resident code at pc: the
                    # interpreter reproduces the legacy fetch behavior
                    # (including the exact decode error) for the rest
                    # of this run() call.
                    return self._run_interpreter(instruction_limit,
                                                 cycle_limit)
            else:
                self.block_hits += 1
            fits = ((instruction_limit is None
                     or instruction_limit - self.instructions >= block.count)
                    and (cycle_limit is None
                         or cycle_limit - self.cycles >= block.max_cycles))
            if fits:
                self._exec_block_fast(block)
                if self._watch_hit is not None:
                    return self._stop(StopReason.WATCHPOINT)
                if instruction_limit is not None and \
                        self.instructions >= instruction_limit:
                    return self._stop(StopReason.INSTRUCTION_LIMIT)
                if cycle_limit is not None and self.cycles >= cycle_limit:
                    return self._stop(StopReason.CYCLE_LIMIT)
            else:
                stop = self._exec_block_checked(block, instruction_limit,
                                                cycle_limit)
                if stop is not None:
                    return stop

    def _exec_superblock(self, superblock):
        """Run a whole superblock; limits were prechecked to cover it.

        Accounting is batched in locals and committed once in the
        ``finally`` clause, so side exits (a mispredicted branch, a
        watchpoint/SMC/IRQ condition after a memory step, a faulting
        step) reconcile exact cycles, instructions and pc: every
        closure that can divert control writes ``cpu.pc`` itself
        before the exit, and a faulting step contributes neither
        cycles nor an instruction, exactly like the block executors.
        """
        regs = self.regs
        memory = self.memory
        self._code_dirty = False
        cycles = 0
        retired = 0
        done = False
        try:
            for unit in superblock.units:
                kind = unit[0]
                if kind == 4:           # UNIT_FUSED_BRANCH
                    retired += unit[2]
                    if unit[1](regs):
                        cycles += unit[3] + unit[5]
                        self.pc = next_pc = unit[4]
                    else:
                        cycles += unit[3] + unit[7]
                        self.pc = next_pc = unit[6]
                    if next_pc != unit[8]:
                        return
                elif kind == 0:         # UNIT_ALU: fused pure run
                    unit[1](regs)
                    retired += unit[2]
                    cycles += unit[3]
                elif kind == 1:         # UNIT_MEM: side-exit checks
                    cycles += unit[1](self, regs, memory)
                    retired += 1
                    if (self._watch_hit is not None
                            or self._code_dirty
                            or (self.irq_pending
                                and self.interrupts_enabled)):
                        return
                elif kind == 3:         # UNIT_PRED: if-converted skip
                    if unit[1](regs):
                        retired += unit[2]
                        cycles += unit[3]
                    else:
                        retired += unit[4]
                        cycles += unit[5]
                else:                   # UNIT_OP
                    cycles += unit[1](self, regs, memory)
                    retired += 1
            done = True
        finally:
            self.cycles += cycles
            self.instructions += retired
            self.superblock_exits += 1
            if done:
                if superblock.end_static is not None:
                    self.pc = superblock.end_static
            else:
                # Guard exit (mispredicted branch, watchpoint/SMC/IRQ
                # after a memory step, or a faulting step): count it
                # and remember the site for re-profiling analytics.
                self.superblock_side_exits += 1
                sites = self.side_exit_sites
                sites[superblock.start] = sites.get(superblock.start, 0) + 1

    def _exec_block_fast(self, block):
        """Run a whole block; limits were prechecked to cover it.

        Memory steps re-check watchpoint hits, stores into cached code,
        and interrupt delivery (an MMIO store may raise the IRQ line
        mid-block); pure ALU steps run back to back.
        """
        regs = self.regs
        memory = self.memory
        self._code_dirty = False
        cycles = 0
        retired = 0
        try:
            for step, is_mem, _static_pc in block.steps:
                cycles += step(self, regs, memory)
                retired += 1
                if is_mem and (self._watch_hit is not None
                               or self._code_dirty
                               or (self.irq_pending
                                   and self.interrupts_enabled)):
                    return
        finally:
            # A faulting step contributes neither cycles nor an
            # instruction, exactly like the interpreter.
            self.cycles += cycles
            self.instructions += retired
            if retired == block.count and block.steps[-1][2] is not None:
                self.pc = block.end

    def _exec_block_checked(self, block, instruction_limit, cycle_limit):
        """Run a block with the legacy per-instruction limit checks.

        Taken when a limit could expire inside the block; returns the
        stop reason when one fires, else None (outer loop continues).
        """
        self._code_dirty = False
        regs = self.regs
        memory = self.memory
        for step, is_mem, static_pc in block.steps:
            cycles = step(self, regs, memory)
            self.cycles += cycles
            self.instructions += 1
            if static_pc is not None:
                self.pc = static_pc
            if self._watch_hit is not None:
                return self._stop(StopReason.WATCHPOINT)
            if instruction_limit is not None and \
                    self.instructions >= instruction_limit:
                return self._stop(StopReason.INSTRUCTION_LIMIT)
            if cycle_limit is not None and self.cycles >= cycle_limit:
                return self._stop(StopReason.CYCLE_LIMIT)
            if is_mem and (self._code_dirty
                           or (self.irq_pending
                               and self.interrupts_enabled)):
                return None
        return None

    # -- legacy interpreter ----------------------------------------------------

    def _run_interpreter(self, instruction_limit, cycle_limit):
        """The reference per-instruction fetch/decode/execute loop."""
        regs = self.regs
        memory = self.memory
        while True:
            if self.halted:
                return self._stop(StopReason.HALT)
            if self.waiting:
                return self._stop(StopReason.WFI)
            if self.irq_pending and self.interrupts_enabled:
                return self._stop(StopReason.INTERRUPT)
            pc = self.pc
            if self.breakpoints.has_code(pc) and pc != self._resume_skip:
                self.breakpoints.record_code_hit(pc)
                return self._stop(StopReason.BREAKPOINT)
            self._resume_skip = None
            decoded = self._decode_at(pc)
            spec = decoded.spec
            self.pc = (pc + 4) & _WORD
            cycles = spec.cycles
            if self._icache is not None:
                cycles += self._icache.access(pc)
            name = spec.name
            # -- ALU and move ------------------------------------------------
            if name == "add":
                regs[decoded.rd] = (regs[decoded.rs1] + regs[decoded.rs2]) & _WORD
            elif name == "addi":
                regs[decoded.rd] = (regs[decoded.rs1] + decoded.imm) & _WORD
            elif name == "sub":
                regs[decoded.rd] = (regs[decoded.rs1] - regs[decoded.rs2]) & _WORD
            elif name == "lw":
                address = (regs[decoded.rs1] + decoded.imm) & _WORD
                regs[decoded.rd] = memory.load_word(address)
                cycles += self._note_access(address, False, regs[decoded.rd])
            elif name == "sw":
                address = (regs[decoded.rs1] + decoded.imm) & _WORD
                memory.store_word(address, regs[decoded.rd])
                cycles += self._note_access(address, True, regs[decoded.rd])
            elif name in _BRANCHES:
                if _BRANCHES[name](regs[decoded.rs1], regs[decoded.rs2]):
                    self.pc = (pc + 4 + 4 * decoded.imm) & _WORD
                    cycles += spec.taken_extra
            elif name == "li":
                regs[decoded.rd] = decoded.imm & _WORD
            elif name == "lui":
                regs[decoded.rd] = (decoded.imm << 16) & _WORD
            elif name == "mov":
                regs[decoded.rd] = regs[decoded.rs1]
            elif name == "mul":
                regs[decoded.rd] = (regs[decoded.rs1] * regs[decoded.rs2]) & _WORD
            elif name == "divu":
                divisor = regs[decoded.rs2]
                if divisor == 0:
                    raise GuestFault("division by zero at pc=0x%08x" % pc)
                regs[decoded.rd] = (regs[decoded.rs1] // divisor) & _WORD
            elif name == "remu":
                divisor = regs[decoded.rs2]
                if divisor == 0:
                    raise GuestFault("remainder by zero at pc=0x%08x" % pc)
                regs[decoded.rd] = (regs[decoded.rs1] % divisor) & _WORD
            elif name == "and":
                regs[decoded.rd] = regs[decoded.rs1] & regs[decoded.rs2]
            elif name == "or":
                regs[decoded.rd] = regs[decoded.rs1] | regs[decoded.rs2]
            elif name == "xor":
                regs[decoded.rd] = regs[decoded.rs1] ^ regs[decoded.rs2]
            elif name == "not":
                regs[decoded.rd] = (~regs[decoded.rs1]) & _WORD
            elif name == "shl":
                regs[decoded.rd] = (regs[decoded.rs1]
                                    << (regs[decoded.rs2] & 31)) & _WORD
            elif name == "shr":
                regs[decoded.rd] = regs[decoded.rs1] >> (regs[decoded.rs2] & 31)
            elif name == "sar":
                regs[decoded.rd] = (isa.to_signed32(regs[decoded.rs1])
                                    >> (regs[decoded.rs2] & 31)) & _WORD
            elif name == "slt":
                regs[decoded.rd] = int(isa.to_signed32(regs[decoded.rs1])
                                       < isa.to_signed32(regs[decoded.rs2]))
            elif name == "sltu":
                regs[decoded.rd] = int(regs[decoded.rs1] < regs[decoded.rs2])
            elif name == "andi":
                regs[decoded.rd] = regs[decoded.rs1] & decoded.imm
            elif name == "ori":
                regs[decoded.rd] = regs[decoded.rs1] | decoded.imm
            elif name == "xori":
                regs[decoded.rd] = regs[decoded.rs1] ^ decoded.imm
            elif name == "shli":
                regs[decoded.rd] = (regs[decoded.rs1]
                                    << (decoded.imm & 31)) & _WORD
            elif name == "shri":
                regs[decoded.rd] = regs[decoded.rs1] >> (decoded.imm & 31)
            # -- memory (byte) ------------------------------------------------
            elif name == "lb":
                address = (regs[decoded.rs1] + decoded.imm) & _WORD
                regs[decoded.rd] = isa.to_unsigned32(
                    isa.sign_extend(memory.load_byte(address), 8))
                cycles += self._note_access(address, False, regs[decoded.rd])
            elif name == "lbu":
                address = (regs[decoded.rs1] + decoded.imm) & _WORD
                regs[decoded.rd] = memory.load_byte(address)
                cycles += self._note_access(address, False, regs[decoded.rd])
            elif name == "sb":
                address = (regs[decoded.rs1] + decoded.imm) & _WORD
                memory.store_byte(address, regs[decoded.rd] & 0xFF)
                cycles += self._note_access(address, True,
                                            regs[decoded.rd] & 0xFF)
            # -- control flow -------------------------------------------------
            elif name == "jmp":
                self.pc = (pc + 4 + 4 * decoded.imm) & _WORD
            elif name == "jal":
                regs[REG_LR] = self.pc
                self.pc = (pc + 4 + 4 * decoded.imm) & _WORD
            elif name == "jr":
                self.pc = regs[decoded.rd]
            elif name == "jalr":
                target = regs[decoded.rd]
                regs[REG_LR] = self.pc
                self.pc = target
            elif name == "push":
                address = (regs[REG_SP] - 4) & _WORD
                memory.store_word(address, regs[decoded.rd])
                regs[REG_SP] = address
            elif name == "pop":
                value = memory.load_word(regs[REG_SP])
                regs[decoded.rd] = value
                regs[REG_SP] = (regs[REG_SP] + 4) & _WORD
            # -- system -------------------------------------------------------
            elif name == "nop":
                pass
            elif name == "halt":
                self.halted = True
            elif name == "wfi":
                self.waiting = True
            elif name == "sys":
                cycles += self.syscalls.dispatch(self, decoded.imm)
            else:  # pragma: no cover - table is exhaustive
                raise IssError("unexecutable instruction %r" % name)
            self.cycles += cycles
            self.instructions += 1
            if self._observers:
                for observer in self._observers:
                    observer.on_retire(self, pc, decoded, cycles)
            if self._watch_hit is not None:
                return self._stop(StopReason.WATCHPOINT)
            if instruction_limit is not None and \
                    self.instructions >= instruction_limit:
                return self._stop(StopReason.INSTRUCTION_LIMIT)
            if cycle_limit is not None and self.cycles >= cycle_limit:
                return self._stop(StopReason.CYCLE_LIMIT)

    def step(self):
        """Execute exactly one instruction (debugger single-step)."""
        if self.breakpoints.has_code(self.pc):
            # Single-step is allowed to step *off* a breakpoint.
            self._resume_skip = self.pc
        return self.run(max_instructions=1)

    def resume_from_breakpoint(self):
        """Arm the step-past logic so run() does not re-trip the current bp."""
        self._resume_skip = self.pc

    def _note_access(self, address, is_write, value):
        extra = 0
        if self._dcache is not None:
            extra = self._dcache.access(address)
        if self.breakpoints.has_watchpoints:
            watchpoint = self.breakpoints.check_access(address, is_write)
            if watchpoint is not None:
                self._watch_hit = (watchpoint, address, value, is_write)
        return extra

    def _stop(self, reason):
        self._last_stop = reason
        if self.tracer.enabled:
            self.tracer.emit("iss", "stop", scope=self.name,
                             reason=reason.value, pc=self.pc,
                             cycles=self.cycles,
                             instructions=self.instructions)
        return reason


def instruction_observer(tracer, cpu):
    """An opt-in per-retire observer emitting one event per instruction.

    Attach with ``cpu.attach_observer(instruction_observer(tracer,
    cpu))``; this is deliberately *not* part of :meth:`Cpu.attach_tracer`
    because per-instruction events dominate any trace they appear in.
    """

    class _InstructionTracer:
        def on_retire(self, cpu, pc, decoded, cycles):
            if tracer.enabled:
                tracer.emit("iss", "retire", scope=cpu.name, pc=pc,
                            op=decoded.spec.name, cycles=cycles)

    return _InstructionTracer()
