"""Process-backend ISS execution workers (docs/parallel.md; `multiprocessing` fork).

The thread backend of the parallel dispatcher cannot speed up
CPU-bound guest code: the interpreter and the block closures hold the
GIL for their whole stretch.  This module moves the *execution* of one
:class:`~repro.iss.cpu.Cpu` into a persistent forked worker process
while everything else about the context — the GDB stub, the RSP
client, ports, metrics — stays in the SystemC process:

- guest RAM is exported into a ``multiprocessing.shared_memory``
  segment *before* the fork (:meth:`Memory.export_shared`), so RSP
  ``M`` writes from the master and guest stores in the worker act on
  the same bytes with no copying;
- every ``cpu.run`` call is forwarded over a pipe
  (:class:`RemoteCpu`), shipping the small architectural state blob
  both ways.  Forwarding *all* runs means the worker's decode/block
  caches are the only caches that ever execute — they warm up and
  invalidate exactly like the single serial cache, which keeps
  ``blocks_compiled``/``block_hits`` counters — and, on the
  superblock tier, the profiler counts, promotions and
  ``superblock_*`` counters — byte-identical to serial execution;
- trace events emitted inside the worker (``iss/stop``,
  ``iss/breakpoint``, ``iss/watchpoint``, ``iss/block_compile``) are
  captured in a :class:`~repro.obs.tracer.TraceBuffer` and replayed on
  the calling thread in emission order, so the main tracer assigns the
  same sequence numbers serial execution would have;
- the pipe round trip releases the GIL, which is what lets several
  contexts genuinely execute at once under the dispatcher's pool.

The backend degrades safely: :func:`attach_remote` returns ``None``
when fork is unavailable, the memory has MMIO regions, or the CPU
carries host-side attachments (timing caches, retire observers,
syscall handlers) that cannot cross a process boundary faithfully.
"""

import multiprocessing
import os

from repro import errors as _errors
from repro.errors import IssError
from repro.iss.cpu import StopReason
from repro.obs.tracer import TraceBuffer

#: How long (seconds) to wait for a worker before declaring it wedged.
DEFAULT_TIMEOUT = 60.0

_STATE_FIELDS = ("pc", "cycles", "instructions", "halted", "waiting",
                 "exit_code", "interrupts_enabled", "irq_pending",
                 "irq_vector")


def _pack_state(cpu):
    """The architectural state blob shipped master -> worker."""
    state = {name: getattr(cpu, name) for name in _STATE_FIELDS}
    state["regs"] = list(cpu.regs)
    state["resume_skip"] = cpu._resume_skip
    state["breakpoints"] = sorted(cpu.breakpoints._code)
    state["watchpoints"] = [(wp.address, wp.length, wp.kind.value)
                            for wp in cpu.breakpoints._watch]
    return state


def _apply_state(cpu, state):
    """Install a master-side state blob into the worker CPU."""
    for name in _STATE_FIELDS:
        setattr(cpu, name, state[name])
    cpu.regs[:] = state["regs"]
    cpu._resume_skip = state["resume_skip"]
    bps = cpu.breakpoints
    wanted = set(state["breakpoints"])
    current = set(bps._code)
    for address in sorted(current - wanted):
        bps.remove_code(address)
    for address in sorted(wanted - current):
        bps.add_code(address)
    existing = {(wp.address, wp.length, wp.kind.value): wp
                for wp in bps._watch}
    bps._watch = []
    for key in state["watchpoints"]:
        watchpoint = existing.get(key)
        if watchpoint is None:
            from repro.iss.breakpoints import Watchpoint, WatchKind
            watchpoint = Watchpoint(key[0], key[1], WatchKind(key[2]))
        bps._watch.append(watchpoint)


def _pack_result(cpu):
    """The result blob shipped worker -> master after a run."""
    result = {name: getattr(cpu, name) for name in _STATE_FIELDS}
    result["regs"] = list(cpu.regs)
    result["resume_skip"] = cpu._resume_skip
    result["last_stop"] = (cpu._last_stop.value
                           if cpu._last_stop is not None else None)
    if cpu._watch_hit is not None:
        watchpoint, address, value, is_write = cpu._watch_hit
        result["watch_hit"] = (watchpoint.address, watchpoint.length,
                               watchpoint.kind.value, address, value,
                               is_write)
    else:
        result["watch_hit"] = None
    result["bp_hits"] = dict(cpu.breakpoints._code)
    result["code_hit_count"] = cpu.breakpoints.code_hit_count
    result["watch_hit_count"] = cpu.breakpoints.watch_hit_count
    result["blocks_compiled"] = cpu.blocks_compiled
    result["block_hits"] = cpu.block_hits
    result["block_invalidations"] = cpu.block_invalidations
    result["superblocks_compiled"] = cpu.superblocks_compiled
    result["superblock_exits"] = cpu.superblock_exits
    result["superblock_invalidations"] = cpu.superblock_invalidations
    result["superblock_side_exits"] = cpu.superblock_side_exits
    result["side_exit_sites"] = dict(cpu.side_exit_sites)
    # The worker's profiler is the one that executes, so its counts
    # are authoritative; shipping them back keeps master-side
    # checkpoints (which serialize the master CPU) tier-faithful.
    result["profile"] = cpu.block_profiler.state()
    return result


def _apply_result(cpu, result):
    """Install a worker result blob into the master-side CPU."""
    for name in _STATE_FIELDS:
        setattr(cpu, name, result[name])
    cpu.regs[:] = result["regs"]
    cpu._resume_skip = result["resume_skip"]
    last = result["last_stop"]
    cpu._last_stop = StopReason(last) if last is not None else None
    hit = result["watch_hit"]
    if hit is not None:
        from repro.iss.breakpoints import Watchpoint, WatchKind
        wp_address, wp_length, wp_kind, address, value, is_write = hit
        watchpoint = Watchpoint(wp_address, wp_length, WatchKind(wp_kind))
        cpu._watch_hit = (watchpoint, address, value, is_write)
    else:
        cpu._watch_hit = None
    cpu.breakpoints._code = dict(result["bp_hits"])
    cpu.breakpoints.code_hit_count = result["code_hit_count"]
    cpu.breakpoints.watch_hit_count = result["watch_hit_count"]
    cpu.blocks_compiled = result["blocks_compiled"]
    cpu.block_hits = result["block_hits"]
    cpu.block_invalidations = result["block_invalidations"]
    cpu.superblocks_compiled = result["superblocks_compiled"]
    cpu.superblock_exits = result["superblock_exits"]
    cpu.superblock_invalidations = result["superblock_invalidations"]
    cpu.superblock_side_exits = result["superblock_side_exits"]
    cpu.side_exit_sites = dict(result["side_exit_sites"])
    cpu.block_profiler.restore(result["profile"])


def _worker_main(conn, cpu):
    """The forked worker loop: apply state, run, ship results back.

    The fork happened after ``memory.export_shared``, so ``cpu.memory``
    aliases the master's guest RAM; everything else on the inherited
    objects is private to this process.
    """
    buffer = TraceBuffer()
    cpu._remote = None          # this copy executes locally
    cpu._attrib = None          # wall-time attribution is master-side
    cpu.attach_tracer(buffer)   # also routes breakpoint-set emissions
    try:
        while True:
            try:
                command = conn.recv()
            except EOFError:
                break
            if command[0] == "exit":
                break
            kind, state, max_instructions, max_cycles = command
            if state.pop("flush", False):
                cpu.flush_decode_cache()
            cpu.block_trace = state.pop("block_trace", False)
            cpu.use_superblocks = state.pop("use_superblocks", False)
            cpu.block_profiler.hot_threshold = state.pop(
                "hot_threshold", cpu.block_profiler.hot_threshold)
            # The master's counts mirror this worker's own (synced
            # every result), so reinstalling them is an idempotent
            # assignment serially — and after a checkpoint restore it
            # seeds the fresh worker with the restored profile.
            cpu.block_profiler.restore(state.pop("profile", []))
            _apply_state(cpu, state)
            if kind == "sync":
                conn.send(("ok", None, _pack_result(cpu), buffer.drain()))
                continue
            try:
                reason = cpu.run(max_instructions=max_instructions,
                                 max_cycles=max_cycles)
            except Exception as exc:   # shipped back and re-raised
                conn.send(("error", type(exc).__name__, str(exc),
                           _pack_result(cpu), buffer.drain()))
            else:
                conn.send(("ok", reason.value, _pack_result(cpu),
                           buffer.drain()))
    finally:
        conn.close()
        # Detach from the inherited segment without unlinking it —
        # the master owns the segment's lifetime.
        cpu.memory.close_shared(unlink=False)


class RemoteWorkerError(IssError):
    """The worker process died or stopped responding."""


class RemoteCpu:
    """Master-side proxy forwarding every ``cpu.run`` to the worker."""

    def __init__(self, cpu, process, conn, timeout=DEFAULT_TIMEOUT):
        self.cpu = cpu
        self.process = process
        self.conn = conn
        self.timeout = timeout
        self.pending_flush = False
        self.round_trips = 0
        self.detached = False

    def _exchange(self, kind, max_instructions=None, max_cycles=None):
        state = _pack_state(self.cpu)
        state["flush"] = self.pending_flush
        state["block_trace"] = self.cpu.block_trace
        state["use_superblocks"] = self.cpu.use_superblocks
        state["hot_threshold"] = self.cpu.block_profiler.hot_threshold
        state["profile"] = self.cpu.block_profiler.state()
        self.pending_flush = False
        try:
            self.conn.send((kind, state, max_instructions, max_cycles))
            if not self.conn.poll(self.timeout):
                raise RemoteWorkerError(
                    "ISS worker for %r unresponsive after %.0fs"
                    % (self.cpu.name, self.timeout))
            reply = self.conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise RemoteWorkerError(
                "ISS worker for %r died: %s" % (self.cpu.name, exc))
        self.round_trips += 1
        if reply[0] == "error":
            __, exc_name, message, result, payloads = reply
            _apply_result(self.cpu, result)
            self.cpu.tracer.replay(payloads)
            exc_type = getattr(_errors, exc_name, IssError)
            if not isinstance(exc_type, type) or \
                    not issubclass(exc_type, Exception):
                exc_type = IssError
            raise exc_type(message)
        __, reason_value, result, payloads = reply
        _apply_result(self.cpu, result)
        self.cpu.tracer.replay(payloads)
        return StopReason(reason_value) if reason_value is not None else None

    def run(self, max_instructions=None, max_cycles=None):
        """Forward one :meth:`Cpu.run` call; returns its StopReason."""
        return self._exchange("run", max_instructions, max_cycles)

    def sync(self):
        """Apply any pending flush and pull state without executing."""
        if not self.detached:
            self._exchange("sync")

    def detach(self):
        """Sync final state, stop the worker, restore local execution."""
        if self.detached:
            return
        self.detached = True
        try:
            self._exchange("sync")
        except Exception:
            pass
        try:
            self.conn.send(("exit",))
        except (BrokenPipeError, OSError):
            pass
        self.conn.close()
        self.process.join(timeout=5.0)
        if self.process.is_alive():   # pragma: no cover - wedged worker
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.cpu._remote = None
        self.cpu.memory.close_shared()


def attach_remote(cpu, timeout=DEFAULT_TIMEOUT):
    """Fork a persistent execution worker for *cpu*; returns the proxy.

    Returns ``None`` (leaving the CPU untouched) when process execution
    cannot be faithful: no ``fork`` start method, MMIO regions (their
    handlers live in the master), timing caches, retire observers, or
    registered syscall handlers (they may close over master state).
    Must be called before the CPU has started executing so the worker's
    caches warm up exactly like a serial run's.
    """
    if cpu._remote is not None:
        return cpu._remote
    if os.name != "posix" or \
            "fork" not in multiprocessing.get_all_start_methods():
        return None   # pragma: no cover - non-posix host
    if cpu.memory.regions or cpu._icache is not None \
            or cpu._dcache is not None or cpu._observers:
        return None
    if getattr(cpu.syscalls, "_handlers", None):
        return None
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe()
    cpu.memory.export_shared()
    process = ctx.Process(target=_worker_main, args=(child_conn, cpu),
                          daemon=True, name="iss-%s" % cpu.name)
    process.start()
    child_conn.close()
    remote = RemoteCpu(cpu, process, parent_conn, timeout=timeout)
    cpu._remote = remote
    return remote
