"""Byte-addressable guest memory with memory-mapped I/O regions.

Little-endian, bounds-checked, with word accesses required to be
4-byte aligned.  An :class:`MmioRegion` intercepts loads and stores in
an address window — used by tests and by hardware device models that
expose registers to the guest.
"""

import weakref

from repro.errors import MemoryAccessError
from repro.iss.isa import WORD_MASK


def _release_exported(shm, view):
    """Finalizer for an exported segment (module-level: must not hold
    the Memory alive).  ``SharedMemory.__del__`` refuses to close while
    the exported view exists, so a process that exits without
    ``close_shared()`` would spray ``BufferError`` tracebacks at
    interpreter shutdown without this."""
    view.release()
    shm.close()
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already unlinked
        pass


class MmioRegion:
    """A load/store-intercepting address window.

    Subclasses override :meth:`load_word` / :meth:`store_word` (and the
    byte variants when byte access is meaningful).
    """

    def __init__(self, base, size, name="mmio"):
        if base % 4 or size % 4:
            raise MemoryAccessError("MMIO region must be word-aligned")
        self.base = base
        self.size = size
        self.name = name

    def contains(self, address):
        """True when *address* falls inside this window."""
        return self.base <= address < self.base + self.size

    def load_word(self, offset):
        """Word read at *offset*; override in readable regions."""
        raise MemoryAccessError("region %r is not readable" % self.name)

    def store_word(self, offset, value):
        """Word write at *offset*; override in writable regions."""
        raise MemoryAccessError("region %r is not writable" % self.name)

    def load_byte(self, offset):
        """Byte read, derived from the containing word by default."""
        word = self.load_word(offset & ~3)
        return (word >> (8 * (offset & 3))) & 0xFF

    def store_byte(self, offset, value):
        """Byte write; unsupported unless overridden."""
        raise MemoryAccessError("region %r does not support byte stores"
                                % self.name)


class Memory:
    """Flat guest RAM plus registered MMIO regions."""

    def __init__(self, size=1 << 20):
        if size <= 0 or size % 4:
            raise MemoryAccessError("memory size must be a positive multiple of 4")
        self.size = size
        self.data = bytearray(size)
        self.regions = []
        self.load_count = 0
        self.store_count = 0
        self._code_pages = set()        # pages holding decoded code
        self._code_listeners = []       # called with the store address
        self._shm = None                # SharedMemory backing, when exported
        self._shm_finalizer = None
        self._dirty = None              # dirty page indices, when tracked

    # -- shared-memory backing (process-backend parallel execution) ------------

    @property
    def shared(self):
        """True when guest RAM lives in a shared-memory segment."""
        return self._shm is not None

    def export_shared(self):
        """Move guest RAM into a ``multiprocessing.shared_memory`` segment.

        After this, :attr:`data` is a writable memoryview over the
        segment, so a worker process forked afterwards sees every store
        either side makes — the zero-copy guest RAM the process
        parallel backend runs on.  All existing access paths
        (word/byte loads and stores, bulk read/write, snapshot and
        restore) operate on the view unchanged.  Returns the segment
        name.
        """
        if self._shm is not None:
            return self._shm.name
        from multiprocessing import shared_memory
        shm = shared_memory.SharedMemory(create=True, size=self.size)
        shm.buf[:self.size] = self.data
        self._shm = shm
        # The segment may be page-rounded larger than the guest RAM;
        # slice so full-view assignments (snapshot restore) keep their
        # exact-length semantics.
        self.data = shm.buf[:self.size]
        self._shm_finalizer = weakref.finalize(
            self, _release_exported, shm, self.data)
        return shm.name

    def close_shared(self, unlink=True):
        """Detach from (and by default destroy) the shared segment.

        Guest RAM contents are copied back into a private bytearray so
        the Memory stays usable after the parallel backend shuts down.
        """
        if self._shm is None:
            return
        if self._shm_finalizer is not None:
            self._shm_finalizer.detach()
            self._shm_finalizer = None
        shm, self._shm = self._shm, None
        view, self.data = self.data, bytearray(shm.buf[:self.size])
        view.release()   # shm.close() refuses while exports are live
        shm.close()
        if unlink:
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # -- code-page tracking (decode/block cache invalidation) ------------------

    def watch_code(self, address):
        """Mark the page holding *address* as containing decoded code.

        Guest stores into a watched page notify every registered code
        listener so CPUs can invalidate stale decodes and compiled
        blocks (self-modifying code support).  Pages are 256 bytes, so
        a 4-byte-aligned instruction never straddles two pages.
        """
        self._code_pages.add(address >> 8)

    def add_code_listener(self, listener):
        """Register *listener(address)* for stores into watched code."""
        self._code_listeners.append(listener)
        return listener

    def notify_code_write(self, address, length):
        """Fire code listeners for a host-side write into watched pages.

        Host-side writers that bypass the counted store paths but must
        preserve decode coherence (the DMI grant tier writing straight
        into its view — docs/dmi.md) report the written range here; it
        fires word by word, exactly as guest stores do, so the CPUs'
        word-precise invalidation applies rather than a whole-cache
        flush.
        """
        if not self._code_pages:
            return
        for offset in range(0, max(length, 1), 4):
            target = address + offset
            if (target >> 8) in self._code_pages:
                for listener in self._code_listeners:
                    listener(target)

    def add_region(self, region):
        """Register an MMIO region; it shadows RAM at its addresses."""
        for existing in self.regions:
            if (region.base < existing.base + existing.size
                    and existing.base < region.base + region.size):
                raise MemoryAccessError(
                    "MMIO region %r overlaps %r" % (region.name, existing.name)
                )
        self.regions.append(region)
        return region

    def _find_region(self, address):
        for region in self.regions:
            if region.contains(address):
                return region
        return None

    def _check(self, address, width):
        if not 0 <= address <= self.size - width:
            raise MemoryAccessError(
                "access of %d bytes at 0x%08x outside memory of %d bytes"
                % (width, address, self.size)
            )
        if width == 4 and address % 4:
            raise MemoryAccessError("misaligned word access at 0x%08x" % address)

    # -- word access ---------------------------------------------------------

    def load_word(self, address):
        """Read an aligned 32-bit word (RAM or MMIO)."""
        self._check(address, 4)
        self.load_count += 1
        region = self._find_region(address)
        if region is not None:
            return region.load_word(address - region.base) & WORD_MASK
        return int.from_bytes(self.data[address:address + 4], "little")

    def store_word(self, address, value):
        """Write an aligned 32-bit word (RAM or MMIO)."""
        self._check(address, 4)
        self.store_count += 1
        region = self._find_region(address)
        if region is not None:
            region.store_word(address - region.base, value & WORD_MASK)
            return
        self.data[address:address + 4] = (value & WORD_MASK).to_bytes(4, "little")
        if self._dirty is not None:
            self._dirty.add(address >> 8)
        if self._code_pages and (address >> 8) in self._code_pages:
            for listener in self._code_listeners:
                listener(address)

    # -- byte access ---------------------------------------------------------

    def load_byte(self, address):
        """Read one byte (RAM or MMIO)."""
        self._check(address, 1)
        self.load_count += 1
        region = self._find_region(address)
        if region is not None:
            return region.load_byte(address - region.base) & 0xFF
        return self.data[address]

    def store_byte(self, address, value):
        """Write one byte (RAM or MMIO)."""
        self._check(address, 1)
        self.store_count += 1
        region = self._find_region(address)
        if region is not None:
            region.store_byte(address - region.base, value & 0xFF)
            return
        self.data[address] = value & 0xFF
        if self._dirty is not None:
            self._dirty.add(address >> 8)
        if self._code_pages and (address >> 8) in self._code_pages:
            for listener in self._code_listeners:
                listener(address)

    # -- bulk access (host-side only: loader, GDB stub) -----------------------

    def read_bytes(self, address, length):
        """Host-side bulk read (loader/debugger; no MMIO dispatch)."""
        self._check(address, max(length, 1))
        return bytes(self.data[address:address + length])

    def write_bytes(self, address, payload):
        """Host-side bulk write (loader/debugger; no MMIO dispatch)."""
        self._check(address, max(len(payload), 1))
        self.data[address:address + len(payload)] = payload
        if self._dirty is not None and payload:
            first = address >> 8
            last = (address + len(payload) - 1) >> 8
            self._dirty.update(range(first, last + 1))

    # -- page snapshots (checkpoint/restore) -----------------------------------

    PAGE_SIZE = 256   # matches the code-page granularity above

    def enable_dirty_tracking(self):
        """Track pages written through this Memory's own store paths.

        A capture-cost optimization only: stores performed by a forked
        process worker happen in another interpreter (only the shared
        bytes propagate), so checkpointing falls back to the full
        nonzero-page scan whenever tracking cannot see every store.
        Returns the live dirty-page set.
        """
        if self._dirty is None:
            self._dirty = set()
        return self._dirty

    def drain_dirty(self):
        """Dirty page indices since the last drain (tracking required)."""
        if self._dirty is None:
            return set()
        dirty, self._dirty = self._dirty, set()
        return dirty

    def snapshot_pages(self):
        """Sparse image of guest RAM: ``{page_index: page_bytes}``.

        All-zero pages are skipped (freshly built systems restore them
        implicitly), so the image size tracks the working set, not the
        address-space size.  Reads :attr:`data` directly — never the
        counted load paths — so taking a snapshot perturbs nothing.
        """
        pages = {}
        step = self.PAGE_SIZE
        data = self.data
        zero = bytes(step)
        for base in range(0, self.size, step):
            chunk = bytes(data[base:base + step])
            if chunk != zero:
                pages[base // step] = chunk
        return pages

    def load_pages(self, pages):
        """Overwrite guest RAM from a :meth:`snapshot_pages` image.

        Pages absent from *pages* are zeroed — the image is the whole
        RAM state, not a patch.
        """
        step = self.PAGE_SIZE
        zero = bytes(step)
        for base in range(0, self.size, step):
            chunk = pages.get(base // step)
            self.data[base:base + step] = chunk if chunk else zero
