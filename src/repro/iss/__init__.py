"""A cycle-counted 32-bit RISC instruction-set simulator.

This package stands in for the commercial i386 ISS of the paper.  It
provides everything the co-simulation schemes need from a processor
model: a binary instruction encoding (:mod:`repro.iss.isa`), a two-pass
assembler with symbol and source-line tables (:mod:`repro.iss.assembler`,
:mod:`repro.iss.symbols`), byte-addressable memory with MMIO regions
(:mod:`repro.iss.memory`), a fetch/decode/execute core with cycle
accounting, breakpoints and watchpoints (:mod:`repro.iss.cpu`,
:mod:`repro.iss.breakpoints`), a syscall/trap interface for the RTOS
layer (:mod:`repro.iss.syscalls`) and a disassembler
(:mod:`repro.iss.disasm`).
"""

from repro.iss.isa import OPS_BY_NAME, OPS_BY_OPCODE, OpSpec, Decoded, encode, decode
from repro.iss.memory import Memory, MmioRegion
from repro.iss.assembler import assemble, Program
from repro.iss.symbols import SymbolTable
from repro.iss.disasm import disassemble, disassemble_word
from repro.iss.cpu import Cpu, StopReason, REG_SP, REG_LR, NUM_REGS
from repro.iss.breakpoints import BreakpointSet, Watchpoint, WatchKind
from repro.iss.syscalls import SyscallTable
from repro.iss.loader import load_program

__all__ = [
    "OPS_BY_NAME", "OPS_BY_OPCODE", "OpSpec", "Decoded", "encode", "decode",
    "Memory", "MmioRegion", "assemble", "Program", "SymbolTable",
    "disassemble", "disassemble_word", "Cpu", "StopReason", "REG_SP",
    "REG_LR", "NUM_REGS", "BreakpointSet", "Watchpoint", "WatchKind",
    "SyscallTable", "load_program",
]
