"""Program loading.

Copies an assembled :class:`~repro.iss.assembler.Program` into a CPU's
memory, sets the entry point and initialises the stack pointer.
"""

from repro.errors import IssError
from repro.iss.cpu import REG_SP


def load_program(cpu, program, stack_top=None):
    """Load *program* into *cpu*; returns the program for chaining.

    *stack_top* defaults to the top of memory (word-aligned).
    """
    if not program.chunks:
        raise IssError("cannot load an empty program")
    for address, data in program.chunks:
        cpu.memory.write_bytes(address, data)
    cpu.flush_decode_cache()
    cpu.pc = program.entry
    if stack_top is None:
        stack_top = cpu.memory.size
    if stack_top % 4:
        raise IssError("stack top must be word-aligned")
    cpu.regs[REG_SP] = stack_top
    cpu.halted = False
    cpu.waiting = False
    cpu.exit_code = None
    return program
