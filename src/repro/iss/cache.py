"""Cache timing models.

Set-associative LRU caches that refine the CPU's cycle accounting: an
instruction cache charges miss penalties on fetches, a data cache on
explicit loads/stores (``lw/lb/lbu/sw/sb``; stack ``push``/``pop`` are
treated as always-hitting, like a register-window).  The models carry
*timing only* — data still moves through :class:`repro.iss.memory.
Memory` — which is the standard trade-off for co-simulation-speed ISSs.

Attach with::

    cpu.attach_icache(CacheModel(size=4096))
    cpu.attach_dcache(CacheModel(size=2048, ways=4))
"""

from repro.errors import IssError


def _is_power_of_two(value):
    return value > 0 and value & (value - 1) == 0


class CacheModel:
    """A set-associative LRU cache (timing only)."""

    def __init__(self, size=4096, line_size=16, ways=2, miss_cycles=20,
                 name="cache"):
        if not (_is_power_of_two(size) and _is_power_of_two(line_size)
                and _is_power_of_two(ways)):
            raise IssError("cache geometry must be powers of two")
        if size % (line_size * ways):
            raise IssError("cache size must divide into lines and ways")
        self.name = name
        self.size = size
        self.line_size = line_size
        self.ways = ways
        self.miss_cycles = miss_cycles
        self.num_sets = size // (line_size * ways)
        # Each set is an LRU-ordered list of tags (front = most recent).
        self._sets = [[] for __ in range(self.num_sets)]
        self._line_shift = line_size.bit_length() - 1
        self._set_mask = self.num_sets - 1
        self.hits = 0
        self.misses = 0

    def __repr__(self):
        return "CacheModel(%r, %dB, %d-way, %d sets)" % (
            self.name, self.size, self.ways, self.num_sets)

    def access(self, address):
        """Record an access; returns the cycle penalty (0 on a hit)."""
        line = address >> self._line_shift
        index = line & self._set_mask
        tag = line >> (self.num_sets.bit_length() - 1)
        ways = self._sets[index]
        if tag in ways:
            self.hits += 1
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
            return 0
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.ways:
            ways.pop()
        return self.miss_cycles

    def invalidate(self):
        """Flush every line (e.g. after a debugger code download)."""
        self._sets = [[] for __ in range(self.num_sets)]

    @property
    def accesses(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.accesses if self.accesses else 0.0
