"""Profile-guided superblocks: the second ISS execution tier.

:mod:`repro.iss.blocks` removed per-instruction dispatch; this module
removes the per-*block* costs that remain on hot code.  When the
execution-count profiler (:class:`repro.iss.profile.BlockProfiler`)
marks a block start hot, :func:`build_superblock` chains the blocks
reachable through statically-predicted control transfers into one
**superblock**:

- **fallthrough** from a block cut short of a control transfer;
- **unconditional** ``jmp``/``jal`` (compile-time targets);
- **statically-predicted conditional branches** — backward branches
  predicted taken (the classic loop heuristic, so a counted loop
  unrolls into the superblock), forward branches predicted
  not-taken.  A mispredicted branch is a **side exit**: the branch
  closure already set the exact pc and returned the exact cycle cost,
  so the executor just leaves.
- **if-converted short forward skips** — when a forward conditional
  skips a span of provably pure ALU instructions that lies entirely
  inside the next chained block (the ``beq .. skip; a; b; skip:``
  idiom, e.g. the conditional polynomial xor of the guest's bitwise
  CRC-32), the branch is *predicated* instead of predicted: the
  generated function evaluates the comparison and conditionally runs
  the span inline, retiring/charging exactly the architectural path.
  A data-dependent skip then costs one Python ``if`` instead of a
  ~50%-probable side exit, which is what keeps checksum-style loops
  on the fast tier.

The chain stops at dynamic transfers (``jr``/``jalr``), at
``sys``/``wfi``/``halt`` (the outer run loop must observe them), at
any armed code-breakpoint address, and at MMIO-resident or
undecodable code.

Within the superblock, runs of provably pure ALU instructions (no
memory, no faults, no pc writes, constant cycle cost) are *fused*: the
register updates are generated as Python source and ``exec``-compiled
into a single function over the register file, so the per-step
closure-call, cycle-accumulate and side-exit-test overhead disappears
for the straight-line majority of hot loop bodies.  Memory steps and
faultable steps stay individual closures with the exact per-step
accounting and side-exit checks of the block executor, preserving
observable equivalence (watchpoints, SMC, IRQ delivery, fault pc and
counters) instruction for instruction.

Cycle/instruction accounting is batched: the executor accumulates in
locals and commits once at the superblock exit (side exits included —
the ``finally`` commit reconciles exact cycles and pc).  A superblock
only runs when the remaining budget provably covers its worst case,
so it degrades to per-block execution exactly where quantum batching
degrades to lock-step.

Invalidation mirrors the block contract word-precisely: the CPU
registers every page a superblock's constituent blocks touch, and a
guest store overlapping any chained instruction word — or any
breakpoint change, or a host flush — drops the superblock back to its
constituent blocks (see ``Cpu._on_code_store``).
"""

from repro.iss import isa

_WORD = isa.WORD_MASK

#: Upper bound on instructions per superblock.  Large enough to unroll
#: a hot loop many times (amortizing the outer-loop checks), small
#: enough that typical quantum cycle budgets still cover whole
#: superblocks.
MAX_SUPERBLOCK_STEPS = 256

#: Upper bound on chained blocks (unrolled iterations count each time).
MAX_CHAIN_BLOCKS = 64

#: Execution-unit tags (ints, not strings: the executor dispatches on
#: them in its inner loop).
UNIT_ALU = 0      # (UNIT_ALU, fused_fn, count, cycles)
UNIT_MEM = 1      # (UNIT_MEM, closure) — side-exit checks after
UNIT_OP = 2       # (UNIT_OP, closure) — faultable / pc-writing
#: If-converted forward skip: (UNIT_PRED, fn, taken_count,
#: taken_cycles, fall_count, fall_cycles).  ``fn(regs)`` performs the
#: leading ALU run, evaluates the branch, and either returns truthy
#: (taken: span skipped) or runs the span inline and returns falsy;
#: the executor charges the exact per-path instruction/cycle cost.
#: No side exit: both architectural paths rejoin inside the
#: superblock.
UNIT_PRED = 3
#: Fused ALU run ending in a statically-predicted conditional branch:
#: (UNIT_FUSED_BRANCH, fn, count, base_cycles, taken_pc, taken_cycles,
#:  fall_pc, fall_cycles, predicted_pc).  ``fn(regs)`` performs the
#: run's register updates and returns the branch comparison; the
#: executor accounts the exact taken/fall-through cycle cost, writes
#: the exact pc, and side-exits on a misprediction.
UNIT_FUSED_BRANCH = 4

_UNCONDITIONAL = ("jmp", "jal")
_CONDITIONAL = frozenset(
    ["beq", "bne", "blt", "bge", "bltu", "bgeu"])

# -- fused-ALU code generation ------------------------------------------------
#
# One source statement per instruction, textually identical in effect
# to the closure in repro.iss.blocks (same masking, same signedness
# helper), so fusing cannot change a single register bit.  Only ops
# with constant cycle cost and no cpu/memory/pc access qualify.


def _t_nop(d):
    return None


def _t_mov(d):
    return "r[%d] = r[%d]" % (d.rd, d.rs1)


def _t_not(d):
    return "r[%d] = (~r[%d]) & 4294967295" % (d.rd, d.rs1)


def _t_add(d):
    return "r[%d] = (r[%d] + r[%d]) & 4294967295" % (d.rd, d.rs1, d.rs2)


def _t_sub(d):
    return "r[%d] = (r[%d] - r[%d]) & 4294967295" % (d.rd, d.rs1, d.rs2)


def _t_mul(d):
    return "r[%d] = (r[%d] * r[%d]) & 4294967295" % (d.rd, d.rs1, d.rs2)


def _t_and(d):
    return "r[%d] = r[%d] & r[%d]" % (d.rd, d.rs1, d.rs2)


def _t_or(d):
    return "r[%d] = r[%d] | r[%d]" % (d.rd, d.rs1, d.rs2)


def _t_xor(d):
    return "r[%d] = r[%d] ^ r[%d]" % (d.rd, d.rs1, d.rs2)


def _t_shl(d):
    return "r[%d] = (r[%d] << (r[%d] & 31)) & 4294967295" % (
        d.rd, d.rs1, d.rs2)


def _t_shr(d):
    return "r[%d] = r[%d] >> (r[%d] & 31)" % (d.rd, d.rs1, d.rs2)


# Sign conversion inlined branchlessly: to_signed32(x) on a masked
# 32-bit value is exactly (x ^ 0x80000000) - 0x80000000, and the
# textual form saves two function calls per use in hot loops.
_SIGNED = "((r[%d] ^ 2147483648) - 2147483648)"


def _t_sar(d):
    return ("r[%%d] = ((%s >> (r[%%d] & 31)) & 4294967295)"
            % _SIGNED) % (d.rd, d.rs1, d.rs2)


def _t_slt(d):
    return ("r[%%d] = int(%s < %s)" % (_SIGNED, _SIGNED)) % (
        d.rd, d.rs1, d.rs2)


def _t_sltu(d):
    return "r[%d] = int(r[%d] < r[%d])" % (d.rd, d.rs1, d.rs2)


def _t_addi(d):
    return "r[%d] = (r[%d] + (%d)) & 4294967295" % (d.rd, d.rs1, d.imm)


def _t_andi(d):
    return "r[%d] = r[%d] & (%d)" % (d.rd, d.rs1, d.imm)


def _t_ori(d):
    return "r[%d] = r[%d] | (%d)" % (d.rd, d.rs1, d.imm)


def _t_xori(d):
    return "r[%d] = r[%d] ^ (%d)" % (d.rd, d.rs1, d.imm)


def _t_shli(d):
    return "r[%d] = (r[%d] << %d) & 4294967295" % (d.rd, d.rs1, d.imm & 31)


def _t_shri(d):
    return "r[%d] = r[%d] >> %d" % (d.rd, d.rs1, d.imm & 31)


def _t_li(d):
    return "r[%d] = %d" % (d.rd, d.imm & _WORD)


def _t_lui(d):
    return "r[%d] = %d" % (d.rd, (d.imm << 16) & _WORD)


_ALU_TEMPLATES = {
    "nop": _t_nop,
    "mov": _t_mov,
    "not": _t_not,
    "add": _t_add,
    "sub": _t_sub,
    "mul": _t_mul,
    "and": _t_and,
    "or": _t_or,
    "xor": _t_xor,
    "shl": _t_shl,
    "shr": _t_shr,
    "sar": _t_sar,
    "slt": _t_slt,
    "sltu": _t_sltu,
    "addi": _t_addi,
    "andi": _t_andi,
    "ori": _t_ori,
    "xori": _t_xori,
    "shli": _t_shli,
    "shri": _t_shri,
    "li": _t_li,
    "lui": _t_lui,
}


#: Branch comparison expressions, textually identical in effect to the
#: ``_branch_factory`` closures in :mod:`repro.iss.blocks`.
_BRANCH_EXPRS = {
    "beq": lambda d: "r[%d] == r[%d]" % (d.rs1, d.rs2),
    "bne": lambda d: "r[%d] != r[%d]" % (d.rs1, d.rs2),
    "blt": lambda d: ("%s < %s" % (_SIGNED, _SIGNED)) % (d.rs1, d.rs2),
    "bge": lambda d: ("%s >= %s" % (_SIGNED, _SIGNED)) % (d.rs1, d.rs2),
    "bltu": lambda d: "r[%d] < r[%d]" % (d.rs1, d.rs2),
    "bgeu": lambda d: "r[%d] >= r[%d]" % (d.rs1, d.rs2),
}


class _CodeBuffer:
    """Batches every generated function of one superblock.

    One ``exec`` per superblock instead of one per fused unit: the
    CPython compile step dominates chain-build time, so batching cuts
    the warmup cost of promoting a hot loop several-fold.  Fused
    units carry the generated function's *name* until
    :meth:`compile` resolves them all at once.
    """

    __slots__ = ("chunks",)

    def __init__(self):
        self.chunks = []

    def add(self, body_lines):
        """Queue one function body; returns its placeholder name."""
        name = "_f%d" % len(self.chunks)
        self.chunks.append("def %s(r):\n%s" % (name, "\n".join(body_lines)))
        return name

    def compile(self):
        """Compile every queued function; returns the namespace."""
        namespace = {}
        exec("\n".join(self.chunks), namespace)
        return namespace


def _compile_fused(buffer, pending, branch=None):
    """Queue pending ``(statement, cycles)`` pairs as one function.

    Without *branch*, returns a ``(UNIT_ALU, name, count, cycles)``
    unit whose generated function performs every register update
    inline.  With *branch* — a ``(decoded, branch_pc, fall_pc,
    predicted)`` tuple — the function additionally returns the branch
    comparison and the unit is a :data:`UNIT_FUSED_BRANCH` 9-tuple.
    The ``name`` slot is resolved to the compiled function when the
    whole superblock's *buffer* compiles.
    """
    count = len(pending)
    cycles = 0
    lines = []
    for statement, cost in pending:
        cycles += cost
        if statement is not None:
            lines.append("    " + statement)
    if branch is None:
        if not lines:
            lines.append("    pass")
    else:
        decoded, branch_pc, fall_pc, predicted = branch
        lines.append("    return " + _BRANCH_EXPRS[decoded.spec.name](decoded))
    name = buffer.add(lines)
    if branch is None:
        return (UNIT_ALU, name, count, cycles)
    target = (branch_pc + 4 + 4 * decoded.imm) & _WORD
    spec = decoded.spec
    return (UNIT_FUSED_BRANCH, name, count + 1, cycles,
            target, spec.cycles + spec.taken_extra,
            fall_pc, spec.cycles, predicted)


def _compile_predicated(buffer, pending, decoded, span):
    """Queue an if-converted forward skip as one function.

    *pending* is the leading ALU run, *decoded* the forward
    conditional, *span* the ``(statement, cycles)`` pairs of the
    skipped pure-ALU region.  Returns a :data:`UNIT_PRED` 6-tuple; the
    function retires/charges are split per architectural path so the
    accounting matches the interpreter bit for bit.
    """
    cycles = 0
    lines = []
    for statement, cost in pending:
        cycles += cost
        if statement is not None:
            lines.append("    " + statement)
    lines.append("    if %s:" % _BRANCH_EXPRS[decoded.spec.name](decoded))
    lines.append("        return 1")
    span_cycles = 0
    for statement, cost in span:
        span_cycles += cost
        if statement is not None:
            lines.append("    " + statement)
    lines.append("    return 0")
    spec = decoded.spec
    count = len(pending)
    return (UNIT_PRED, buffer.add(lines),
            count + 1, cycles + spec.cycles + spec.taken_extra,
            count + 1 + len(span), cycles + spec.cycles + span_cycles)


def _skip_span(cpu, fall_pc, target, next_block):
    """The skipped region as fused statements, or None.

    If-conversion requires the span ``[fall_pc, target)`` to consist
    entirely of pure ALU-template instructions *and* to lie entirely
    within *next_block* (the chained fall-through block).  The block
    compiler already cut *next_block* before any breakpoint, MMIO or
    undecodable word, so a span that passes the length check is
    guaranteed free of stop conditions — skipping or running it can
    never hide an architecturally visible event.
    """
    span_words = (target - fall_pc) >> 2
    if span_words > next_block.count:
        return None
    span = []
    address = fall_pc
    for __ in range(span_words):
        decoded = cpu._decode_at(address)
        template = _ALU_TEMPLATES.get(decoded.spec.name)
        if template is None:
            return None
        span.append((template(decoded), decoded.spec.cycles))
        address = (address + 4) & _WORD
    return span


# -- superblock formation -----------------------------------------------------


class Superblock:
    """A chain of basic blocks compiled into one execution-unit list.

    ``units`` is a tuple of tagged execution units (see ``UNIT_*``);
    ``count``/``max_cycles`` bound the whole chain for the budget
    precheck; ``ranges`` are the deduplicated ``(start, end)`` address
    spans of the constituent blocks (word-precise invalidation);
    ``end_static`` is the fall-through pc to install on full
    completion when the final step does not write ``cpu.pc`` itself.
    """

    __slots__ = ("start", "units", "count", "max_cycles", "end_static",
                 "ranges", "pages", "block_starts")

    def __init__(self, start, units, count, max_cycles, end_static,
                 ranges, block_starts):
        self.start = start
        self.units = units
        self.count = count
        self.max_cycles = max_cycles
        self.end_static = end_static
        self.ranges = ranges
        self.pages = tuple(sorted(set(
            page for begin, end in ranges
            for page in range(begin >> 8, ((end - 1) >> 8) + 1))))
        self.block_starts = block_starts

    def __repr__(self):
        return "Superblock(0x%08x, %d blocks, %d ops)" % (
            self.start, len(self.block_starts), self.count)

    def covers(self, address):
        """True when *address* holds one of the chained instructions."""
        for begin, end in self.ranges:
            if begin <= address < end:
                return True
        return False


def _continuation(cpu, block):
    """Where the chain goes after *block*: ``(next_pc, predicted)``.

    ``predicted`` is non-None when the transfer is a conditional
    branch executed under a static prediction (the executor guards
    the real pc against it).  ``(None, None)`` stops the chain.
    """
    if not block.has_terminal:
        # Cut short of a control transfer: pure fallthrough.  If the
        # cut was for MMIO/undecodable code ahead, the next block
        # build fails and the chain stops there anyway.
        return block.end, None
    last_pc = (block.end - 4) & _WORD
    decoded = cpu._decode_at(last_pc)
    name = decoded.spec.name
    if name in _UNCONDITIONAL:
        return (last_pc + 4 + 4 * decoded.imm) & _WORD, None
    if name in _CONDITIONAL:
        target = (last_pc + 4 + 4 * decoded.imm) & _WORD
        # Static prediction: backward taken (loops), forward not-taken.
        predicted = target if target <= last_pc else block.end
        return predicted, predicted
    return None, None   # jr/jalr/sys/wfi/halt: dynamic or must-observe


def build_superblock(cpu, start):
    """Chain and compile the superblock entered at *start* on *cpu*.

    Returns ``None`` when no chain forms (fewer than two blocks end to
    end): a superblock must beat plain block dispatch to be worth the
    cache entry.
    """
    breakpoints = cpu.breakpoints
    chained = []          # (block, guard_pc or None) in chain order
    total_steps = 0
    pc = start
    while len(chained) < MAX_CHAIN_BLOCKS:
        if chained and breakpoints.has_code(pc):
            # Never chain *onto* a breakpoint address — the outer run
            # loop must get a chance to stop there.  (The superblock's
            # own start mirrors the block rule: resuming off a
            # breakpoint enters it.)
            break
        block = cpu._block_at(pc)
        if block is None:
            break
        if total_steps + block.count > MAX_SUPERBLOCK_STEPS:
            break
        next_pc, predicted = _continuation(cpu, block)
        chained.append((block, predicted))
        total_steps += block.count
        if next_pc is None:
            break
        pc = next_pc
    if len(chained) < 2:
        return None

    units = []
    buffer = _CodeBuffer()
    max_cycles = 0
    pending = []          # (statement, cycles) run awaiting fusion
    last_position = len(chained) - 1
    next_skip = 0         # leading steps of the next block already
                          # emitted inside an if-converted unit
    for position, (block, predicted) in enumerate(chained):
        max_cycles += block.max_cycles
        skip = next_skip
        next_skip = 0
        address = (block.start + 4 * skip) & _WORD
        last_index = block.count - 1
        for index in range(skip, block.count):
            closure, is_mem, _static_pc = block.steps[index]
            decoded = cpu._decode_at(address)
            name = decoded.spec.name
            if name in _ALU_TEMPLATES:
                pending.append((_ALU_TEMPLATES[name](decoded),
                                decoded.spec.cycles))
            elif (predicted is not None and index == last_index
                    and name in _CONDITIONAL):
                target = (address + 4 + 4 * decoded.imm) & _WORD
                span = None
                if (predicted == block.end and target > block.end
                        and position != last_position):
                    span = _skip_span(cpu, block.end, target,
                                      chained[position + 1][0])
                if span is not None:
                    # If-conversion: predicate the skipped span
                    # instead of predicting the branch — no side
                    # exit either way.
                    units.append(_compile_predicated(
                        buffer, pending, decoded, span))
                    next_skip = len(span)
                else:
                    # Statically-predicted branch: absorb it (and any
                    # pending ALU run) into one generated function.
                    units.append(_compile_fused(
                        buffer, pending,
                        (decoded, address, block.end, predicted)))
                pending = []
            elif (name in _UNCONDITIONAL and position != last_position
                    and index == last_index):
                # A chained jmp/jal's pc write is dead — the next unit
                # continues at the compile-time target, and every exit
                # path writes the exact pc itself.  jal's link-register
                # write stays, fused as a plain constant store.
                if name == "jal":
                    pending.append((
                        "r[%d] = %d" % (isa.REG_LR, (address + 4) & _WORD),
                        decoded.spec.cycles))
                else:
                    pending.append((None, decoded.spec.cycles))
            else:
                if pending:
                    units.append(_compile_fused(buffer, pending))
                    pending = []
                if is_mem:
                    units.append((UNIT_MEM, closure))
                else:
                    units.append((UNIT_OP, closure))
            address = (address + 4) & _WORD
    if pending:
        units.append(_compile_fused(buffer, pending))

    # One exec for the whole chain: resolve each fused unit's function
    # name against the batch-compiled namespace.
    namespace = buffer.compile()
    units = [unit if unit[0] in (UNIT_MEM, UNIT_OP)
             else (unit[0], namespace[unit[1]]) + unit[2:]
             for unit in units]

    final_block = chained[-1][0]
    end_static = (final_block.end
                  if final_block.steps[-1][2] is not None else None)
    ranges = tuple(sorted(set(
        (block.start, block.end) for block, _predicted in chained)))
    block_starts = tuple(block.start for block, _predicted in chained)
    return Superblock(start, tuple(units), total_steps, max_cycles,
                      end_static, ranges, block_starts)
