"""The R32 instruction-set architecture.

A 32-bit load/store RISC with sixteen general-purpose registers
(``r0``-``r15``; ``r13`` is the stack pointer, ``r14`` the link
register) and fixed-width 32-bit instructions.

Encoding (big fields first)::

    [31:26] opcode
    [25:22] rd      (or source register of stores / PUSH)
    [21:18] rs1
    [17:14] rs2
    [15:0]  imm16   (I-format; overlaps rs2's low bits, never both used)
    [25:0]  imm26   (J-format)

Immediates are sign-extended except for the logical immediates
(ANDI/ORI/XORI) and LUI, which zero-extend.  Branch and jump immediates
are counted in 32-bit words relative to the *next* instruction.

Per-instruction cycle costs model a simple in-order core: single-cycle
ALU, 3-cycle multiply, 12-cycle divide, 2-cycle memory accesses and
taken branches, 8-cycle trap entry.
"""

from dataclasses import dataclass

from repro.errors import IllegalInstructionError

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
INSTRUCTION_BYTES = 4

# Register-file facts (the CPU re-exports these for compatibility).
NUM_REGS = 16
REG_SP = 13
REG_LR = 14

# Operand formats.
FMT_NONE = "none"        # no operands
FMT_SYS = "sys"          # imm16 trap number
FMT_R3 = "r3"            # rd, rs1, rs2
FMT_R2 = "r2"            # rd, rs1
FMT_R1 = "r1"            # single register (in rd field)
FMT_RI = "ri"            # rd, rs1, imm16
FMT_RI2 = "ri2"          # rd, imm16
FMT_MEM = "mem"          # rd, [rs1 + imm16]          (loads)
FMT_MEMS = "mems"        # rd(source), [rs1 + imm16]  (stores)
FMT_BRANCH = "branch"    # rs1(in rd field), rs2(in rs1 field), imm16
FMT_JUMP = "jump"        # imm26


@dataclass(frozen=True)
class OpSpec:
    """Static description of one instruction."""

    name: str
    opcode: int
    fmt: str
    cycles: int
    # Extra cycles when a branch is taken.
    taken_extra: int = 0
    signed_imm: bool = True


def _spec(name, opcode, fmt, cycles, taken_extra=0, signed_imm=True):
    return OpSpec(name, opcode, fmt, cycles, taken_extra, signed_imm)


_SPECS = [
    _spec("nop", 0x00, FMT_NONE, 1),
    _spec("halt", 0x01, FMT_NONE, 1),
    _spec("sys", 0x02, FMT_SYS, 8, signed_imm=False),
    _spec("wfi", 0x03, FMT_NONE, 1),
    _spec("mov", 0x04, FMT_R2, 1),
    _spec("not", 0x05, FMT_R2, 1),
    _spec("add", 0x06, FMT_R3, 1),
    _spec("sub", 0x07, FMT_R3, 1),
    _spec("mul", 0x08, FMT_R3, 3),
    _spec("divu", 0x09, FMT_R3, 12),
    _spec("remu", 0x0A, FMT_R3, 12),
    _spec("and", 0x0B, FMT_R3, 1),
    _spec("or", 0x0C, FMT_R3, 1),
    _spec("xor", 0x0D, FMT_R3, 1),
    _spec("shl", 0x0E, FMT_R3, 1),
    _spec("shr", 0x0F, FMT_R3, 1),
    _spec("sar", 0x10, FMT_R3, 1),
    _spec("slt", 0x11, FMT_R3, 1),
    _spec("sltu", 0x12, FMT_R3, 1),
    _spec("addi", 0x13, FMT_RI, 1),
    _spec("andi", 0x14, FMT_RI, 1, signed_imm=False),
    _spec("ori", 0x15, FMT_RI, 1, signed_imm=False),
    _spec("xori", 0x16, FMT_RI, 1, signed_imm=False),
    _spec("shli", 0x17, FMT_RI, 1, signed_imm=False),
    _spec("shri", 0x18, FMT_RI, 1, signed_imm=False),
    _spec("li", 0x19, FMT_RI2, 1),
    _spec("lui", 0x1A, FMT_RI2, 1, signed_imm=False),
    _spec("lw", 0x1B, FMT_MEM, 2),
    _spec("lb", 0x1C, FMT_MEM, 2),
    _spec("lbu", 0x1D, FMT_MEM, 2),
    _spec("sw", 0x1E, FMT_MEMS, 2),
    _spec("sb", 0x1F, FMT_MEMS, 2),
    _spec("beq", 0x20, FMT_BRANCH, 1, taken_extra=1),
    _spec("bne", 0x21, FMT_BRANCH, 1, taken_extra=1),
    _spec("blt", 0x22, FMT_BRANCH, 1, taken_extra=1),
    _spec("bge", 0x23, FMT_BRANCH, 1, taken_extra=1),
    _spec("bltu", 0x24, FMT_BRANCH, 1, taken_extra=1),
    _spec("bgeu", 0x25, FMT_BRANCH, 1, taken_extra=1),
    _spec("jmp", 0x26, FMT_JUMP, 2),
    _spec("jal", 0x27, FMT_JUMP, 2),
    _spec("jr", 0x28, FMT_R1, 2),
    _spec("jalr", 0x29, FMT_R1, 2),
    _spec("push", 0x2A, FMT_R1, 2),
    _spec("pop", 0x2B, FMT_R1, 2),
]

OPS_BY_NAME = {spec.name: spec for spec in _SPECS}
OPS_BY_OPCODE = {spec.opcode: spec for spec in _SPECS}

_IMM16_MASK = 0xFFFF
_IMM26_MASK = 0x3FFFFFF


def sign_extend(value, bits):
    """Interpret the low *bits* of *value* as two's complement."""
    sign_bit = 1 << (bits - 1)
    value &= (1 << bits) - 1
    return value - (1 << bits) if value & sign_bit else value


def to_signed32(value):
    """Reinterpret a 32-bit value as signed."""
    return sign_extend(value, 32)


def to_unsigned32(value):
    """Mask a Python int to its unsigned 32-bit representation."""
    return value & WORD_MASK


def _check_reg(name, value):
    if not isinstance(value, int) or not 0 <= value <= 15:
        raise IllegalInstructionError(
            "register operand %s out of range: %r" % (name, value)
        )
    return value


def _check_imm(value, bits, signed):
    if signed:
        low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        low, high = 0, (1 << bits) - 1
    if not isinstance(value, int) or not low <= value <= high:
        raise IllegalInstructionError(
            "immediate %r does not fit in %d %s bits"
            % (value, bits, "signed" if signed else "unsigned")
        )
    return value & ((1 << bits) - 1)


def encode(name, rd=0, rs1=0, rs2=0, imm=0):
    """Encode an instruction to its 32-bit word."""
    spec = OPS_BY_NAME.get(name)
    if spec is None:
        raise IllegalInstructionError("unknown mnemonic %r" % name)
    word = spec.opcode << 26
    fmt = spec.fmt
    if fmt in (FMT_R3,):
        word |= (_check_reg("rd", rd) << 22 | _check_reg("rs1", rs1) << 18
                 | _check_reg("rs2", rs2) << 14)
    elif fmt in (FMT_R2,):
        word |= _check_reg("rd", rd) << 22 | _check_reg("rs1", rs1) << 18
    elif fmt in (FMT_R1,):
        word |= _check_reg("rd", rd) << 22
    elif fmt in (FMT_RI, FMT_MEM, FMT_MEMS):
        word |= (_check_reg("rd", rd) << 22 | _check_reg("rs1", rs1) << 18
                 | _check_imm(imm, 16, spec.signed_imm))
    elif fmt in (FMT_RI2,):
        word |= (_check_reg("rd", rd) << 22
                 | _check_imm(imm, 16, spec.signed_imm))
    elif fmt in (FMT_BRANCH,):
        word |= (_check_reg("rs1", rd) << 22 | _check_reg("rs2", rs1) << 18
                 | _check_imm(imm, 16, True))
    elif fmt in (FMT_SYS,):
        word |= _check_imm(imm, 16, False)
    elif fmt in (FMT_JUMP,):
        word |= _check_imm(imm, 26, True)
    elif fmt in (FMT_NONE,):
        pass
    else:  # pragma: no cover - exhaustive over formats
        raise IllegalInstructionError("unhandled format %r" % fmt)
    return word


@dataclass(frozen=True)
class Decoded:
    """A decoded instruction: its spec plus extracted operand fields."""

    spec: OpSpec
    rd: int
    rs1: int
    rs2: int
    imm: int  # already sign-/zero-extended per the spec

    @property
    def name(self):
        return self.spec.name

    def compile(self, pc):
        """Compile this decoded instruction for execution at *pc*.

        Returns ``(closure, is_mem, is_terminal)`` — the closure is a
        Python function over ``(cpu, regs, memory)`` with every operand
        field, immediate and cycle cost bound at compile time, so the
        executing inner loop performs no string dispatch (see
        :mod:`repro.iss.blocks`).
        """
        from repro.iss.blocks import compile_instruction

        return compile_instruction(self, pc)


def decode(word):
    """Decode a 32-bit instruction word."""
    opcode = (word >> 26) & 0x3F
    spec = OPS_BY_OPCODE.get(opcode)
    if spec is None:
        raise IllegalInstructionError("illegal opcode 0x%02x (word 0x%08x)"
                                      % (opcode, word))
    rd = (word >> 22) & 0xF
    rs1 = (word >> 18) & 0xF
    rs2 = (word >> 14) & 0xF
    if spec.fmt == FMT_JUMP:
        imm = sign_extend(word & _IMM26_MASK, 26)
    else:
        raw = word & _IMM16_MASK
        imm = sign_extend(raw, 16) if spec.signed_imm else raw
    if spec.fmt == FMT_BRANCH:
        # Branch register operands live in the rd/rs1 fields.
        return Decoded(spec, 0, rd, rs1, imm)
    return Decoded(spec, rd, rs1, rs2, imm)
