"""Closure compilation of decoded instructions into basic blocks.

The interpreter in :mod:`repro.iss.cpu` pays a ~40-arm string dispatch
chain plus halt/irq/breakpoint/limit re-checks on *every* instruction.
This module removes both costs:

- :func:`compile_instruction` turns one :class:`~repro.iss.isa.Decoded`
  into a Python closure over ``(cpu, regs, memory)`` with the operand
  indices, immediates, next-pc constant and cycle cost all bound at
  compile time — executing it is one call, no dispatch;
- :func:`build_block` strings consecutive closures into a
  :class:`BasicBlock`: a straight-line run ending at a control transfer
  (branch/jump/``jr``/``jalr``), a ``sys``/``wfi``/``halt``, a code
  breakpoint address, an undecodable word, or :data:`MAX_BLOCK_LENGTH`.

The CPU caches blocks by start address and executes them with the
boundary checks hoisted out of the inner loop (see
``Cpu._run_blocks``).  Observable equivalence with the interpreter is
preserved exactly: faulting and memory-touching closures set ``cpu.pc``
before acting (so faults and watchpoint stops see the interpreter's
pc), division faults raise the same :class:`~repro.errors.GuestFault`
messages, and memory closures route through ``Cpu._note_access`` so
watchpoints fire identically.

Each compiled step is a ``(closure, is_mem, static_next_pc)`` triple:
``is_mem`` marks closures after which the executor must re-check
watchpoint hits, guest stores into cached code, and interrupt
delivery (an MMIO store may raise the IRQ line mid-block);
``static_next_pc`` is the fall-through pc for closures that do not
write ``cpu.pc`` themselves (pure ALU ops), letting the limit-checked
executor stop mid-block with an exact program counter.
"""

from repro.errors import (GuestFault, IllegalInstructionError,
                          MemoryAccessError)
from repro.iss import isa

_WORD = isa.WORD_MASK
_REG_SP = isa.REG_SP
_REG_LR = isa.REG_LR
_signed = isa.to_signed32

#: Upper bound on instructions per block, bounding ``max_cycles`` so a
#: typical co-simulation cycle budget still covers whole blocks.
MAX_BLOCK_LENGTH = 32

#: Instructions that end a basic block (control transfer or a state
#: change the outer run loop must observe before continuing).
TERMINAL_OPS = frozenset([
    "beq", "bne", "blt", "bge", "bltu", "bgeu",
    "jmp", "jal", "jr", "jalr", "sys", "wfi", "halt",
])


class BasicBlock:
    """A compiled straight-line run of instructions.

    ``steps`` is a tuple of ``(closure, is_mem, static_next_pc)``;
    ``max_cycles`` is the worst-case cycle cost (taken branches
    included) used to decide whether the block fits a budget without
    per-instruction limit checks; ``end`` doubles as the fall-through
    pc for blocks cut short of a control transfer (it is the address
    of the first instruction past the block by construction).
    """

    __slots__ = ("start", "end", "steps", "count", "max_cycles",
                 "has_terminal")

    def __init__(self, start, end, steps, max_cycles, has_terminal):
        self.start = start
        self.end = end
        self.steps = steps
        self.count = len(steps)
        self.max_cycles = max_cycles
        self.has_terminal = has_terminal

    def __repr__(self):
        return "BasicBlock(0x%08x..0x%08x, %d ops)" % (
            self.start, self.end, self.count)

    def covers(self, address):
        """True when *address* holds one of this block's instructions."""
        return self.start <= address < self.end


# -- per-instruction compilers ------------------------------------------------
#
# Each factory binds the decoded fields and returns (closure, is_mem).
# Closures that may fault or touch memory assign cpu.pc first, exactly
# where the interpreter would have it.

def _c_nop(d, pc, next_pc):
    def op(cpu, regs, memory):
        return 1
    return op, False


def _c_halt(d, pc, next_pc):
    def op(cpu, regs, memory):
        cpu.pc = next_pc
        cpu.halted = True
        return 1
    return op, False


def _c_wfi(d, pc, next_pc):
    def op(cpu, regs, memory):
        cpu.pc = next_pc
        cpu.waiting = True
        return 1
    return op, False


def _c_sys(d, pc, next_pc):
    imm = d.imm
    base = d.spec.cycles

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        return base + cpu.syscalls.dispatch(cpu, imm)
    return op, False


def _c_mov(d, pc, next_pc):
    rd, rs1 = d.rd, d.rs1

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1]
        return 1
    return op, False


def _c_not(d, pc, next_pc):
    rd, rs1 = d.rd, d.rs1

    def op(cpu, regs, memory):
        regs[rd] = (~regs[rs1]) & _WORD
        return 1
    return op, False


def _c_add(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] + regs[rs2]) & _WORD
        return 1
    return op, False


def _c_sub(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] - regs[rs2]) & _WORD
        return 1
    return op, False


def _c_mul(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] * regs[rs2]) & _WORD
        return 3
    return op, False


def _c_divu(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        divisor = regs[rs2]
        if divisor == 0:
            raise GuestFault("division by zero at pc=0x%08x" % pc)
        regs[rd] = (regs[rs1] // divisor) & _WORD
        return 12
    return op, False


def _c_remu(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        divisor = regs[rs2]
        if divisor == 0:
            raise GuestFault("remainder by zero at pc=0x%08x" % pc)
        regs[rd] = (regs[rs1] % divisor) & _WORD
        return 12
    return op, False


def _c_and(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] & regs[rs2]
        return 1
    return op, False


def _c_or(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] | regs[rs2]
        return 1
    return op, False


def _c_xor(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] ^ regs[rs2]
        return 1
    return op, False


def _c_shl(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] << (regs[rs2] & 31)) & _WORD
        return 1
    return op, False


def _c_shr(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] >> (regs[rs2] & 31)
        return 1
    return op, False


def _c_sar(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = (_signed(regs[rs1]) >> (regs[rs2] & 31)) & _WORD
        return 1
    return op, False


def _c_slt(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = int(_signed(regs[rs1]) < _signed(regs[rs2]))
        return 1
    return op, False


def _c_sltu(d, pc, next_pc):
    rd, rs1, rs2 = d.rd, d.rs1, d.rs2

    def op(cpu, regs, memory):
        regs[rd] = int(regs[rs1] < regs[rs2])
        return 1
    return op, False


def _c_addi(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] + imm) & _WORD
        return 1
    return op, False


def _c_andi(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] & imm
        return 1
    return op, False


def _c_ori(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] | imm
        return 1
    return op, False


def _c_xori(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] ^ imm
        return 1
    return op, False


def _c_shli(d, pc, next_pc):
    rd, rs1, shift = d.rd, d.rs1, d.imm & 31

    def op(cpu, regs, memory):
        regs[rd] = (regs[rs1] << shift) & _WORD
        return 1
    return op, False


def _c_shri(d, pc, next_pc):
    rd, rs1, shift = d.rd, d.rs1, d.imm & 31

    def op(cpu, regs, memory):
        regs[rd] = regs[rs1] >> shift
        return 1
    return op, False


def _c_li(d, pc, next_pc):
    rd, value = d.rd, d.imm & _WORD

    def op(cpu, regs, memory):
        regs[rd] = value
        return 1
    return op, False


def _c_lui(d, pc, next_pc):
    rd, value = d.rd, (d.imm << 16) & _WORD

    def op(cpu, regs, memory):
        regs[rd] = value
        return 1
    return op, False


def _c_lw(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[rs1] + imm) & _WORD
        value = memory.load_word(address)
        regs[rd] = value
        return 2 + cpu._note_access(address, False, value)
    return op, True


def _c_lb(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[rs1] + imm) & _WORD
        value = isa.to_unsigned32(
            isa.sign_extend(memory.load_byte(address), 8))
        regs[rd] = value
        return 2 + cpu._note_access(address, False, value)
    return op, True


def _c_lbu(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[rs1] + imm) & _WORD
        value = memory.load_byte(address)
        regs[rd] = value
        return 2 + cpu._note_access(address, False, value)
    return op, True


def _c_sw(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[rs1] + imm) & _WORD
        memory.store_word(address, regs[rd])
        return 2 + cpu._note_access(address, True, regs[rd])
    return op, True


def _c_sb(d, pc, next_pc):
    rd, rs1, imm = d.rd, d.rs1, d.imm

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[rs1] + imm) & _WORD
        value = regs[rd] & 0xFF
        memory.store_byte(address, value)
        return 2 + cpu._note_access(address, True, value)
    return op, True


def _c_push(d, pc, next_pc):
    rd = d.rd

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        address = (regs[_REG_SP] - 4) & _WORD
        memory.store_word(address, regs[rd])
        regs[_REG_SP] = address
        return 2
    return op, True


def _c_pop(d, pc, next_pc):
    rd = d.rd

    def op(cpu, regs, memory):
        cpu.pc = next_pc
        value = memory.load_word(regs[_REG_SP])
        regs[rd] = value
        regs[_REG_SP] = (regs[_REG_SP] + 4) & _WORD
        return 2
    return op, True


def _c_jmp(d, pc, next_pc):
    target = (pc + 4 + 4 * d.imm) & _WORD

    def op(cpu, regs, memory):
        cpu.pc = target
        return 2
    return op, False


def _c_jal(d, pc, next_pc):
    target = (pc + 4 + 4 * d.imm) & _WORD

    def op(cpu, regs, memory):
        regs[_REG_LR] = next_pc
        cpu.pc = target
        return 2
    return op, False


def _c_jr(d, pc, next_pc):
    rd = d.rd

    def op(cpu, regs, memory):
        cpu.pc = regs[rd]
        return 2
    return op, False


def _c_jalr(d, pc, next_pc):
    rd = d.rd

    def op(cpu, regs, memory):
        target = regs[rd]
        regs[_REG_LR] = next_pc
        cpu.pc = target
        return 2
    return op, False


def _branch_factory(compare):
    def factory(d, pc, next_pc):
        rs1, rs2 = d.rs1, d.rs2
        target = (pc + 4 + 4 * d.imm) & _WORD
        taken_cycles = d.spec.cycles + d.spec.taken_extra
        fall_cycles = d.spec.cycles

        def op(cpu, regs, memory):
            if compare(regs[rs1], regs[rs2]):
                cpu.pc = target
                return taken_cycles
            cpu.pc = next_pc
            return fall_cycles
        return op, False
    return factory


_COMPILERS = {
    "nop": _c_nop,
    "halt": _c_halt,
    "wfi": _c_wfi,
    "sys": _c_sys,
    "mov": _c_mov,
    "not": _c_not,
    "add": _c_add,
    "sub": _c_sub,
    "mul": _c_mul,
    "divu": _c_divu,
    "remu": _c_remu,
    "and": _c_and,
    "or": _c_or,
    "xor": _c_xor,
    "shl": _c_shl,
    "shr": _c_shr,
    "sar": _c_sar,
    "slt": _c_slt,
    "sltu": _c_sltu,
    "addi": _c_addi,
    "andi": _c_andi,
    "ori": _c_ori,
    "xori": _c_xori,
    "shli": _c_shli,
    "shri": _c_shri,
    "li": _c_li,
    "lui": _c_lui,
    "lw": _c_lw,
    "lb": _c_lb,
    "lbu": _c_lbu,
    "sw": _c_sw,
    "sb": _c_sb,
    "push": _c_push,
    "pop": _c_pop,
    "jmp": _c_jmp,
    "jal": _c_jal,
    "jr": _c_jr,
    "jalr": _c_jalr,
    "beq": _branch_factory(lambda a, b: a == b),
    "bne": _branch_factory(lambda a, b: a != b),
    "blt": _branch_factory(lambda a, b: _signed(a) < _signed(b)),
    "bge": _branch_factory(lambda a, b: _signed(a) >= _signed(b)),
    "bltu": _branch_factory(lambda a, b: a < b),
    "bgeu": _branch_factory(lambda a, b: a >= b),
}


def compile_instruction(decoded, pc):
    """Compile one decoded instruction for execution at *pc*.

    Returns ``(closure, is_mem, is_terminal)``; see the module
    docstring for the closure contract.
    """
    name = decoded.spec.name
    factory = _COMPILERS.get(name)
    if factory is None:  # pragma: no cover - table is exhaustive
        raise IllegalInstructionError("uncompilable instruction %r" % name)
    next_pc = (pc + 4) & _WORD
    closure, is_mem = factory(decoded, pc, next_pc)
    return closure, is_mem, name in TERMINAL_OPS


def build_block(cpu, start):
    """Compile the basic block starting at *start* on *cpu*.

    The block is cut before any code-breakpoint address other than its
    own start (resuming off a breakpoint enters the block), and before
    the first undecodable word so the interpreter can raise the exact
    fetch/decode error with the interpreter's state.  Returns ``None``
    when not even one instruction compiles.
    """
    steps = []
    max_cycles = 0
    address = start
    has_terminal = False
    breakpoints = cpu.breakpoints
    memory = cpu.memory
    while len(steps) < MAX_BLOCK_LENGTH:
        if steps and breakpoints.has_code(address):
            break
        if memory._find_region(address) is not None:
            # Never decode *ahead* through MMIO: reading a device
            # register (e.g. a FIFO) is a side effect the guest did
            # not ask for yet.  The interpreter fallback fetches it
            # exactly when executed.
            break
        count_before = memory.load_count
        try:
            decoded = cpu._decode_at(address)
        except (IllegalInstructionError, MemoryAccessError):
            # Undo any fetch accounting so the interpreter's own raise
            # at this pc leaves identical counters.
            memory.load_count = count_before
            break
        next_pc = (address + 4) & _WORD
        closure, is_mem, terminal = compile_instruction(decoded, address)
        # Closures that write cpu.pc themselves need no static pc; the
        # pure ones record the fall-through so the limit-checked
        # executor can stop mid-block with an exact program counter.
        static_pc = None if (is_mem or terminal) else next_pc
        steps.append((closure, is_mem, static_pc))
        max_cycles += decoded.spec.cycles + decoded.spec.taken_extra
        address = next_pc
        if terminal:
            has_terminal = True
            break
    if not steps:
        return None
    return BasicBlock(start, address, tuple(steps), max_cycles,
                      has_terminal)
