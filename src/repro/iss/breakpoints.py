"""Code breakpoints and data watchpoints for the ISS.

Breakpoints follow GDB semantics: the CPU stops *before* executing the
instruction at a breakpoint address (paper Section 3.2 relies on this
to poke ``iss_out`` values into a variable before the guest reads it).
Watchpoints stop *after* the matching access, reporting the address and
value, like GDB write/read watchpoints.
"""

import enum

from repro.errors import IssError
from repro.obs.tracer import NULL_TRACER


class WatchKind(enum.Enum):
    """Access directions a watchpoint can trigger on."""
    WRITE = "write"
    READ = "read"
    ACCESS = "access"


class Watchpoint:
    """A data watchpoint over ``[address, address+length)``."""

    def __init__(self, address, length=4, kind=WatchKind.WRITE):
        if length <= 0:
            raise IssError("watchpoint length must be positive")
        self.address = address
        self.length = length
        self.kind = kind
        self.hit_count = 0

    def matches(self, address, is_write):
        """True when an access of this direction hits our range."""
        if is_write and self.kind is WatchKind.READ:
            return False
        if not is_write and self.kind is WatchKind.WRITE:
            return False
        return self.address <= address < self.address + self.length

    def __repr__(self):
        return "Watchpoint(0x%08x, %d, %s)" % (
            self.address, self.length, self.kind.value)


class BreakpointSet:
    """The set of active breakpoints/watchpoints of one CPU."""

    def __init__(self):
        self._code = {}        # address -> hit count
        self._watch = []
        self.code_hit_count = 0
        self.watch_hit_count = 0
        self.tracer = NULL_TRACER   # wired by Cpu.attach_tracer
        self.owner = ""
        self.on_code_change = None  # wired by Cpu for block invalidation

    # -- code breakpoints ---------------------------------------------------

    def add_code(self, address):
        """Insert a code breakpoint at *address*.

        Notifies ``on_code_change`` so the CPU can drop compiled blocks
        that would otherwise run through the new breakpoint.
        """
        self._code.setdefault(address, 0)
        if self.on_code_change is not None:
            self.on_code_change(address)

    def remove_code(self, address):
        """Remove the code breakpoint at *address* (no-op if absent)."""
        self._code.pop(address, None)
        if self.on_code_change is not None:
            self.on_code_change(address)

    def has_code(self, address):
        """True when a code breakpoint is set at *address*."""
        return address in self._code

    def code_addresses(self):
        """Sorted list of active code-breakpoint addresses."""
        return sorted(self._code)

    def record_code_hit(self, address):
        """Record a stop at the breakpoint at *address*."""
        self.code_hit_count += 1
        self._code[address] = self._code.get(address, 0) + 1
        if self.tracer.enabled:
            self.tracer.emit("iss", "breakpoint", scope=self.owner,
                             address=address, hits=self._code[address])

    def hits_at(self, address):
        """Hit count of the breakpoint at *address*."""
        return self._code.get(address, 0)

    # -- watchpoints ---------------------------------------------------------

    def add_watch(self, address, length=4, kind=WatchKind.WRITE):
        """Insert a data watchpoint; returns it."""
        watchpoint = Watchpoint(address, length, kind)
        self._watch.append(watchpoint)
        return watchpoint

    def remove_watch(self, address, kind=None):
        """Remove watchpoints at *address* (optionally by kind)."""
        self._watch = [
            wp for wp in self._watch
            if not (wp.address == address and (kind is None or wp.kind is kind))
        ]

    @property
    def has_watchpoints(self):
        return bool(self._watch)

    def check_access(self, address, is_write):
        """Return the first matching watchpoint, updating hit counts."""
        for watchpoint in self._watch:
            if watchpoint.matches(address, is_write):
                watchpoint.hit_count += 1
                self.watch_hit_count += 1
                if self.tracer.enabled:
                    self.tracer.emit("iss", "watchpoint", scope=self.owner,
                                     address=address,
                                     kind=watchpoint.kind.value,
                                     write=is_write)
                return watchpoint
        return None
