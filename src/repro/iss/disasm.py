"""Disassembler for the R32 ISA.

Produces assembler-compatible text, used for debugger output and for
round-trip testing of the encoder.
"""

from repro.iss import isa


def _reg(index):
    if index == 13:
        return "sp"
    if index == 14:
        return "lr"
    return "r%d" % index


def disassemble_word(word, address=0):
    """One instruction word -> its mnemonic text.

    *address* resolves branch/jump offsets to absolute targets.
    """
    decoded = isa.decode(word)
    spec = decoded.spec
    fmt = spec.fmt
    name = spec.name
    if fmt == isa.FMT_NONE:
        return name
    if fmt == isa.FMT_SYS:
        return "%s %d" % (name, decoded.imm)
    if fmt == isa.FMT_R3:
        return "%s %s, %s, %s" % (name, _reg(decoded.rd),
                                  _reg(decoded.rs1), _reg(decoded.rs2))
    if fmt == isa.FMT_R2:
        return "%s %s, %s" % (name, _reg(decoded.rd), _reg(decoded.rs1))
    if fmt == isa.FMT_R1:
        return "%s %s" % (name, _reg(decoded.rd))
    if fmt == isa.FMT_RI:
        return "%s %s, %s, %d" % (name, _reg(decoded.rd),
                                  _reg(decoded.rs1), decoded.imm)
    if fmt == isa.FMT_RI2:
        return "%s %s, %d" % (name, _reg(decoded.rd), decoded.imm)
    if fmt in (isa.FMT_MEM, isa.FMT_MEMS):
        if decoded.imm == 0:
            return "%s %s, [%s]" % (name, _reg(decoded.rd), _reg(decoded.rs1))
        sign = "+" if decoded.imm >= 0 else "-"
        return "%s %s, [%s %s %d]" % (name, _reg(decoded.rd),
                                      _reg(decoded.rs1), sign,
                                      abs(decoded.imm))
    if fmt == isa.FMT_BRANCH:
        target = address + 4 + 4 * decoded.imm
        return "%s %s, %s, 0x%x" % (name, _reg(decoded.rs1),
                                    _reg(decoded.rs2), target)
    if fmt == isa.FMT_JUMP:
        target = address + 4 + 4 * decoded.imm
        return "%s 0x%x" % (name, target)
    raise isa.IllegalInstructionError  # pragma: no cover


def disassemble(memory, start, count, symbols=None):
    """Disassemble *count* instructions starting at *start*.

    Returns a list of ``(address, text)``; when *symbols* is given,
    label names are prefixed at their addresses.
    """
    lines = []
    labels = {}
    if symbols is not None:
        labels = {addr: name for name, addr in symbols.labels.items()}
    address = start
    for __ in range(count):
        word = memory.load_word(address)
        memory.load_count -= 1
        text = disassemble_word(word, address)
        if address in labels:
            text = "%s: %s" % (labels[address], text)
        lines.append((address, text))
        address += 4
    return lines
