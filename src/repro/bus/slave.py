"""Bus targets."""

from repro.errors import SimulationError


class BusSlave:
    """Base class: word-granular read/write targets."""

    def __init__(self, name):
        self.name = name
        self.read_count = 0
        self.write_count = 0

    def read_word(self, offset):
        """Read the word at *offset*; overridden by concrete slaves."""
        raise SimulationError("slave %r is not readable" % self.name)

    def write_word(self, offset, value):
        """Write the word at *offset*; overridden by concrete slaves."""
        raise SimulationError("slave %r is not writable" % self.name)


class MemorySlave(BusSlave):
    """On-bus RAM."""

    def __init__(self, size, name="ram"):
        super().__init__(name)
        if size <= 0 or size % 4:
            raise SimulationError("memory slave size must be a positive "
                                  "multiple of 4")
        self.size = size
        self.data = bytearray(size)

    def read_word(self, offset):
        """Read a RAM word."""
        self.read_count += 1
        return int.from_bytes(self.data[offset:offset + 4], "little")

    def write_word(self, offset, value):
        """Write a RAM word."""
        self.write_count += 1
        self.data[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(
            4, "little")


class RegisterSlave(BusSlave):
    """Callback-backed register file (device front-ends)."""

    def __init__(self, name="regs"):
        super().__init__(name)
        self._read_handlers = {}
        self._write_handlers = {}

    def define(self, offset, read=None, write=None):
        """Register handlers for the word register at *offset*."""
        if offset % 4:
            raise SimulationError("register offset must be word-aligned")
        if read is not None:
            self._read_handlers[offset] = read
        if write is not None:
            self._write_handlers[offset] = write

    def read_word(self, offset):
        """Invoke the read handler registered at *offset*."""
        handler = self._read_handlers.get(offset)
        if handler is None:
            raise SimulationError(
                "slave %r: no readable register at offset 0x%x"
                % (self.name, offset))
        self.read_count += 1
        return handler() & 0xFFFFFFFF

    def write_word(self, offset, value):
        """Invoke the write handler registered at *offset*."""
        handler = self._write_handlers.get(offset)
        if handler is None:
            raise SimulationError(
                "slave %r: no writable register at offset 0x%x"
                % (self.name, offset))
        self.write_count += 1
        handler(value & 0xFFFFFFFF)
