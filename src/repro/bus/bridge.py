"""CPU-to-bus bridge.

Maps a window of guest (ISS) address space onto the shared bus: guest
loads/stores inside the window become bus transfers, and the wait
states implied by bus latency and contention are charged to the guest
cycle counter — so software running on the ISS *feels* the
interconnect, which is what makes a multi-master SoC model meaningful.
"""

from repro.errors import SimulationError
from repro.iss.memory import MmioRegion


class CpuBusBridge(MmioRegion):
    """An MMIO window forwarding guest accesses to a SharedBus."""

    def __init__(self, cpu, bus, guest_base, bus_base, size,
                 master_id=0, cpu_hz=100_000_000, name=None):
        super().__init__(guest_base, size,
                         name or ("bridge:%s" % cpu.name))
        self.cpu = cpu
        self.bus = bus
        self.bus_base = bus_base
        self.master_id = master_id
        self.cpu_hz = cpu_hz
        self.wait_cycles_total = 0
        cpu.memory.add_region(self)

    def _charge(self, wait_time_fs):
        cycles = int(wait_time_fs * self.cpu_hz / 1e15)
        self.cpu.cycles += cycles
        self.wait_cycles_total += cycles
        return cycles

    def load_word(self, offset):
        """Guest load: forward to the bus and charge wait-states."""
        result, wait_time = self.bus.transfer_now(
            self.master_id, False, self.bus_base + offset)
        self._charge(wait_time)
        return result

    def store_word(self, offset, value):
        """Guest store: forward to the bus and charge wait-states."""
        __, wait_time = self.bus.transfer_now(
            self.master_id, True, self.bus_base + offset, value)
        self._charge(wait_time)

    def store_byte(self, offset, value):
        """Byte stores are not bus transactions; always rejected."""
        raise SimulationError(
            "bridge %r supports word access only (guest used a byte "
            "store at offset 0x%x)" % (self.name, offset))
