"""Shared-bus interconnect.

The paper's architectural template (Section 3) is "several processors
interacting with hardware blocks, and communicating between them
through a common bus".  This package provides that bus:

- :class:`~repro.bus.bus.SharedBus` — an arbitrated, address-decoded
  shared bus with per-transfer latency and contention accounting;
- :class:`~repro.bus.slave.MemorySlave` /
  :class:`~repro.bus.slave.RegisterSlave` — bus targets;
- :class:`~repro.bus.bridge.CpuBusBridge` — maps a window of guest
  (ISS) address space onto the bus, so guest software reaches bus
  slaves with ordinary loads/stores, paying wait-state cycles that
  reflect bus latency and contention.
"""

from repro.bus.bus import SharedBus, Arbitration
from repro.bus.slave import BusSlave, MemorySlave, RegisterSlave
from repro.bus.bridge import CpuBusBridge

__all__ = ["SharedBus", "Arbitration", "BusSlave", "MemorySlave",
           "RegisterSlave", "CpuBusBridge"]
