"""The arbitrated shared bus.

Transactions are word transfers decoded to one registered slave.  Two
access styles serve the two kinds of masters:

- *timed* (:meth:`SharedBus.transfer`): SystemC thread masters issue a
  request and block (``yield from``) until the bus grants and completes
  it; one transfer occupies the bus for ``transfer_time``.  Arbitration
  among simultaneous requesters is fixed-priority (by master id) or
  round-robin.
- *immediate* (:meth:`SharedBus.transfer_now`): the CPU bridge performs
  the slave access synchronously between SystemC cycles (the ISS runs
  in the gaps of simulated time), and the bus reports the wait-state
  cost the access *would* have had, which the bridge charges to the
  guest in cycles.  Utilisation accounting is shared by both styles.
"""

import enum

from repro.errors import SimulationError
from repro.sysc.event import Event
from repro.sysc.module import Module
from repro.sysc.simtime import NS, check_duration


class Arbitration(enum.Enum):
    """Bus arbitration policies."""
    FIXED_PRIORITY = "fixed"
    ROUND_ROBIN = "round-robin"


class _Mapping:
    def __init__(self, slave, base, size):
        self.slave = slave
        self.base = base
        self.size = size

    def contains(self, address):
        return self.base <= address < self.base + self.size


class SharedBus(Module):
    """A single-channel, word-granular shared bus."""

    def __init__(self, name="bus", transfer_time=100 * NS,
                 arbitration=Arbitration.ROUND_ROBIN, kernel=None):
        super().__init__(name, kernel)
        check_duration(transfer_time)
        if transfer_time <= 0:
            raise SimulationError("bus transfer time must be positive")
        self.transfer_time = transfer_time
        self.arbitration = arbitration
        self.mappings = []
        self._pending = []          # (master_id, done_event, txn dict)
        self._grant_event = Event(name + ".grant")
        self._busy = False
        self._last_granted = -1
        self.transfer_count = 0
        self.immediate_count = 0
        self.contention_count = 0   # requests that found the bus busy
        self.per_master_transfers = {}
        self.busy_time = 0
        self.thread(self._arbiter, name="arbiter")

    # -- topology ----------------------------------------------------------

    def add_slave(self, slave, base, size):
        """Map *slave* at ``[base, base+size)``; ranges must not overlap."""
        if base % 4 or size % 4 or size <= 0:
            raise SimulationError("slave mapping must be word-aligned")
        for mapping in self.mappings:
            if (base < mapping.base + mapping.size
                    and mapping.base < base + size):
                raise SimulationError(
                    "mapping for %r overlaps %r"
                    % (slave.name, mapping.slave.name))
        self.mappings.append(_Mapping(slave, base, size))
        return slave

    def decode(self, address):
        """The (slave, offset) for *address*; error when unmapped."""
        for mapping in self.mappings:
            if mapping.contains(address):
                return mapping.slave, address - mapping.base
        raise SimulationError("bus %r: no slave at address 0x%08x"
                              % (self.name, address))

    # -- accounting ----------------------------------------------------------

    def _account(self, master_id):
        self.transfer_count += 1
        self.per_master_transfers[master_id] = \
            self.per_master_transfers.get(master_id, 0) + 1
        self.busy_time += self.transfer_time

    @property
    def utilization(self):
        """Fraction of elapsed simulated time the bus was occupied."""
        if self.kernel.now == 0:
            return 0.0
        return min(1.0, self.busy_time / self.kernel.now)

    # -- timed access (SystemC thread masters) -------------------------------

    def transfer(self, master_id, write, address, value=0):
        """Blocking word transfer; use as
        ``data = yield from bus.transfer(...)``."""
        done = Event("%s.done.%d" % (self.name, master_id))
        transaction = {"write": write, "address": address, "value": value,
                       "result": None}
        if self._busy or self._pending:
            self.contention_count += 1
        self._pending.append((master_id, done, transaction))
        self._grant_event.notify_delta()
        yield done
        return transaction["result"]

    def read(self, master_id, address):
        """Blocking word read (``yield from``)."""
        result = yield from self.transfer(master_id, False, address)
        return result

    def write(self, master_id, address, value):
        """Blocking word write (``yield from``)."""
        result = yield from self.transfer(master_id, True, address, value)
        return result

    def _select(self):
        if self.arbitration is Arbitration.FIXED_PRIORITY:
            index = min(range(len(self._pending)),
                        key=lambda i: self._pending[i][0])
        else:
            # Round-robin: first requester with id > last granted,
            # wrapping.
            ids = [entry[0] for entry in self._pending]
            after = [i for i, mid in enumerate(ids)
                     if mid > self._last_granted]
            index = after[0] if after else 0
        return self._pending.pop(index)

    def _arbiter(self):
        while True:
            if not self._pending:
                yield self._grant_event
                continue
            master_id, done, transaction = self._select()
            self._last_granted = master_id
            self._busy = True
            yield self.transfer_time
            slave, offset = self.decode(transaction["address"])
            if transaction["write"]:
                slave.write_word(offset, transaction["value"])
            else:
                transaction["result"] = slave.read_word(offset)
            self._account(master_id)
            self._busy = False
            done.notify()

    # -- immediate access (the CPU bridge) ------------------------------------

    def transfer_now(self, master_id, write, address, value=0):
        """Synchronous transfer; returns ``(result, wait_time_fs)``.

        The wait time is the bus occupancy the access would experience:
        one transfer slot, plus the backlog of queued timed requests.
        """
        slave, offset = self.decode(address)
        if self._busy or self._pending:
            self.contention_count += 1
        backlog = len(self._pending) + (1 if self._busy else 0)
        wait_time = self.transfer_time * (1 + backlog)
        if write:
            result = None
            slave.write_word(offset, value)
        else:
            result = slave.read_word(offset)
        self._account(master_id)
        self.immediate_count += 1
        return result, wait_time
