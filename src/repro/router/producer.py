"""Packet producer.

"The producer is a SystemC module attached to an input port of the
router. It generates packets with a random destination address."
(paper Section 5)

Generation is paced by a pluggable :mod:`~repro.router.traffic` model;
the default :class:`~repro.router.traffic.UniformTraffic` reproduces
the paper's stream — one packet per *inter-packet delay*, the x axis
of Figure 7.  Packets are offered to the router input FIFO with a
non-blocking put: when the router cannot keep up and the queue is
full, the packet is *dropped*, which is what makes the forwarded
percentage fall below 100%.

Determinism contract: packet destinations and payloads come from one
RNG seeded by *seed*; traffic pacing draws from a *separate* RNG
derived from the same seed, so switching traffic models never
perturbs packet contents.
"""

import random

from repro.errors import SimulationError
from repro.router.packet import DATA_WORDS, Packet
from repro.router.traffic import traffic_from_dict
from repro.sysc.module import Module


class Producer(Module):
    """Generates a paced random packet stream into one input FIFO."""

    def __init__(self, name, input_fifo, inter_packet_delay,
                 num_addresses=16, seed=1, source_address=0,
                 max_packets=None, burst=1, traffic=None, kernel=None):
        """*traffic* selects the pacing model (a
        :class:`~repro.router.traffic.TrafficModel`, a spec dict, or
        ``None`` for the legacy fields: uniform, or bursty when
        *burst* > 1).  *burst* > 1 makes traffic bursty: *burst*
        packets are offered back-to-back, then the producer idles for
        ``burst * inter_packet_delay`` — the same mean rate as the
        smooth stream, but with a peak arrival rate that stresses the
        input queues."""
        super().__init__(name, kernel)
        if inter_packet_delay <= 0:
            raise SimulationError("inter-packet delay must be positive")
        if burst < 1:
            raise SimulationError("burst must be >= 1")
        self.input_fifo = input_fifo
        self.inter_packet_delay = inter_packet_delay
        self.num_addresses = num_addresses
        self.source_address = source_address
        self.max_packets = max_packets
        self.burst = burst
        self.traffic = traffic_from_dict(traffic, inter_packet_delay,
                                         burst)
        self.generated = 0
        self.dropped = 0
        self._rng = random.Random(seed)
        # Pacing randomness is drawn from its own stream so the packet
        # destination/payload sequence is a function of *seed* alone,
        # whatever the traffic model.
        self._traffic_rng = random.Random("traffic:%r" % (seed,))
        self.thread(self._generate, name="generate")

    @property
    def offered(self):
        return self.generated

    @property
    def accepted(self):
        return self.generated - self.dropped

    def _make_packet(self):
        destination = self._rng.randrange(self.num_addresses)
        data = tuple(self._rng.randrange(1 << 32)
                     for __ in range(DATA_WORDS))
        return Packet(self.source_address, destination, self.generated,
                      data, created_at=self.kernel.now)

    def _generate(self):
        while self.max_packets is None or self.generated < self.max_packets:
            for __ in range(self.traffic.batch()):
                if (self.max_packets is not None
                        and self.generated >= self.max_packets):
                    break
                packet = self._make_packet()
                self.generated += 1
                if not self.input_fifo.nb_put(packet):
                    self.dropped += 1
            yield self.traffic.gap(self._traffic_rng)
