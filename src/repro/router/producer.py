"""Packet producer.

"The producer is a SystemC module attached to an input port of the
router. It generates packets with a random destination address."
(paper Section 5)

Generation is paced by the *inter-packet delay* — the x axis of
Figure 7.  Packets are offered to the router input FIFO with a
non-blocking put: when the router cannot keep up and the queue is
full, the packet is *dropped*, which is what makes the forwarded
percentage fall below 100%.
"""

import random

from repro.errors import SimulationError
from repro.router.packet import DATA_WORDS, Packet
from repro.sysc.module import Module


class Producer(Module):
    """Generates a paced random packet stream into one input FIFO."""

    def __init__(self, name, input_fifo, inter_packet_delay,
                 num_addresses=16, seed=1, source_address=0,
                 max_packets=None, burst=1, kernel=None):
        """*burst* > 1 makes traffic bursty: *burst* packets are
        offered back-to-back, then the producer idles for
        ``burst * inter_packet_delay`` — the same mean rate as the
        smooth stream, but with a peak arrival rate that stresses the
        input queues."""
        super().__init__(name, kernel)
        if inter_packet_delay <= 0:
            raise SimulationError("inter-packet delay must be positive")
        if burst < 1:
            raise SimulationError("burst must be >= 1")
        self.input_fifo = input_fifo
        self.inter_packet_delay = inter_packet_delay
        self.num_addresses = num_addresses
        self.source_address = source_address
        self.max_packets = max_packets
        self.burst = burst
        self.generated = 0
        self.dropped = 0
        self._rng = random.Random(seed)
        self.thread(self._generate, name="generate")

    @property
    def offered(self):
        return self.generated

    @property
    def accepted(self):
        return self.generated - self.dropped

    def _make_packet(self):
        destination = self._rng.randrange(self.num_addresses)
        data = tuple(self._rng.randrange(1 << 32)
                     for __ in range(DATA_WORDS))
        return Packet(self.source_address, destination, self.generated,
                      data, created_at=self.kernel.now)

    def _generate(self):
        while self.max_packets is None or self.generated < self.max_packets:
            for __ in range(self.burst):
                if (self.max_packets is not None
                        and self.generated >= self.max_packets):
                    break
                packet = self._make_packet()
                self.generated += 1
                if not self.input_fifo.nb_put(packet):
                    self.dropped += 1
            yield self.burst * self.inter_packet_delay
