"""Packets.

"The packet consists of the following fields: Source address,
Destination address, Packet identifier (used for debugging purposes),
Data field, and Checksum." (paper Section 5)

The data field is four 32-bit words; the checksum covers the seven
header+data words (:data:`PACKET_WORDS`).
"""

from dataclasses import dataclass, replace

DATA_WORDS = 4
PACKET_WORDS = 3 + DATA_WORDS  # source, destination, id, data[4]


@dataclass(frozen=True)
class Packet:
    """One router packet.

    ``created_at`` is testbench metadata (simulated creation time in
    femtoseconds) used for latency measurements; it is not part of the
    wire format and is excluded from the checksummed words.
    """

    source: int
    destination: int
    packet_id: int
    data: tuple
    checksum: int = 0
    created_at: int = 0

    def __post_init__(self):
        if len(self.data) != DATA_WORDS:
            raise ValueError("packet data must be %d words, got %d"
                             % (DATA_WORDS, len(self.data)))

    def words(self):
        """The checksummed words: header then data."""
        return [self.source & 0xFFFFFFFF,
                self.destination & 0xFFFFFFFF,
                self.packet_id & 0xFFFFFFFF] + \
               [word & 0xFFFFFFFF for word in self.data]

    def with_checksum(self, checksum):
        """A copy of this packet with the checksum field set."""
        return replace(self, checksum=checksum & 0xFFFFFFFF)

    def payload_bytes(self):
        """Little-endian serialisation of the checksummed words."""
        return b"".join(word.to_bytes(4, "little") for word in self.words())

    @classmethod
    def from_payload_bytes(cls, payload, checksum=0):
        if len(payload) != 4 * PACKET_WORDS:
            raise ValueError("payload must be %d bytes, got %d"
                             % (4 * PACKET_WORDS, len(payload)))
        words = [int.from_bytes(payload[4 * i:4 * i + 4], "little")
                 for i in range(PACKET_WORDS)]
        return cls(words[0], words[1], words[2], tuple(words[3:]), checksum)
