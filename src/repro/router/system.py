"""Full case-study scenario builder.

Assembles the complete Figure 6 system — router, producers, consumers,
checksum application on the ISS — wired through any of the three
co-simulation schemes (or an ideal local engine as the control), and
exposes the statistics the paper's evaluation reports.
"""

import os
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.build import build_driver_app, build_gdb_app
from repro.apps.sources import CHECKSUM_DEVICE_ID, DATA_SEMAPHORE_ID
from repro.cosim.driver_kernel import DriverKernelScheme
from repro.cosim.gdb_kernel import GdbKernelScheme
from repro.cosim.gdb_wrapper import GdbWrapperScheme
from repro.cosim.metrics import CosimMetrics
from repro.cosim.parallel import make_dispatcher
from repro.errors import CosimError
from repro.iss.cpu import TIERS, Cpu
from repro.iss.loader import load_program
from repro.router.consumer import Consumer
from repro.router.engines import (CHECKSUM_IRQ_VECTOR, DriverChecksumEngine,
                                  GdbChecksumEngine, LocalChecksumEngine)
from repro.router.producer import Producer
from repro.router.router import Router
from repro.router.routing_table import RoutingTable
from repro.rtos.costs import CostModel
from repro.rtos.driver import CosimPortDriver
from repro.rtos.kernel import RtosKernel
from repro.sysc.clock import Clock
from repro.sysc.kernel import Kernel
from repro.sysc.simtime import US

SCHEMES = ("local", "gdb-wrapper", "gdb-kernel", "driver-kernel")

#: Environment overrides for the parallel execution defaults, so an
#: unmodified test suite can be swept across dispatcher configurations
#: (the CI parallel matrix leg sets these).
PARALLEL_ENV = "REPRO_PARALLEL"
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the ISS execution tier, so the same suite
#: sweeps interp/blocks/superblocks (the CI superblock-tier leg sets
#: this to "superblocks").
TIER_ENV = "REPRO_TIER"


def _env_parallel():
    value = os.environ.get(PARALLEL_ENV, "").strip().lower()
    if value in ("", "0", "off", "false", "none"):
        return None
    if value in ("1", "on", "true", "thread"):
        return "thread"
    return value    # "process", or rejected later by ParallelConfig


def _env_workers():
    value = os.environ.get(WORKERS_ENV, "").strip()
    return int(value) if value else 2


def _env_tier():
    value = os.environ.get(TIER_ENV, "").strip().lower()
    return value if value else "blocks"


@dataclass
class RouterConfig:
    """Parameters of one case-study run."""

    scheme: str = "gdb-kernel"
    num_ports: int = 4
    num_addresses: int = 16
    clock_period: int = 1 * US        # SystemC sync quantum
    cpu_hz: int = 100_000_000         # ISS clock
    inter_packet_delay: int = 40 * US  # Figure 7's x axis
    input_capacity: int = 8
    output_capacity: int = 64
    seed: int = 42
    max_packets: Optional[int] = None
    app_origin: int = 0x1000
    memory_size: int = 1 << 20
    stack_top: int = 0x80000
    rtos_costs: Optional[CostModel] = None
    local_latency: int = 0
    producer_count: Optional[int] = None  # defaults to num_ports
    num_cpus: int = 1                     # checksum CPUs (MPSoC config)
    algorithm: str = "sum"                # "sum" (paper) or "crc32"
    # Guest recomputes each packet checksum this many times — the
    # result is unchanged (same buffer each round) but guest compute
    # scales linearly.  The parallel-speedup benchmarks use this to
    # make ISS execution dominate synchronisation traffic.
    checksum_rounds: int = 1
    # GDB schemes only: use the blocked guest app whose packet words
    # all bind to one stacked-pragma breakpoint, so each packet moves
    # in a single RSP block exchange (docs/parallel.md bulk transfers)
    # instead of one stop per word.
    blocked_transfers: bool = False
    burst: int = 1                        # producer burstiness
    # Topology (docs/fuzzing.md): None builds the paper's single
    # ``num_ports``x``num_ports`` router; a list of stage widths (all
    # equal to num_ports — the fabric is square) builds a multi-stage
    # pipeline whose egress stage carries the ISS checksum engines and
    # whose earlier stages forward through zero-latency local engines.
    stages: Optional[list] = None
    # Traffic model spec (docs/fuzzing.md): None derives the model
    # from inter_packet_delay/burst (the paper's stream); a dict like
    # {"kind": "onoff", "on_mean": 4, "off_mean": 8} selects a
    # pluggable seeded model from repro.router.traffic.
    traffic: Optional[object] = None
    # Transport resilience (docs/resilience.md): reliable framing over
    # the co-simulation links, an injected link-fault plan underneath
    # it, and the stalled-context watchdog (in scheduler timesteps).
    reliability: Optional[object] = None  # ReliabilityConfig or True
    fault_plan: Optional[object] = None   # FaultPlan
    watchdog_ticks: Optional[int] = None
    # Co-simulation sync quantum (docs/performance.md): the ISS banks
    # this many timesteps of cycle budget per kernel synchronisation
    # when no stop source can fire in the window.  1 = lock-step.
    sync_quantum: int = 1
    # Parallel execution (docs/parallel.md): dispatch the contexts'
    # cycle budgets to a worker pool each quantum, committing in
    # deterministic attach order.  None/False = serial; "thread" or
    # True = pool threads; "process" = forked per-ISS workers with
    # shared-memory guest RAM.  Defaults honor REPRO_PARALLEL /
    # REPRO_WORKERS so an unmodified suite can be swept.
    parallel: Optional[object] = field(default_factory=_env_parallel)
    workers: int = field(default_factory=_env_workers)
    # ISS execution tier (docs/performance.md): "interp" forces the
    # legacy name-dispatch chain, "blocks" (default) the closure-block
    # compiler, "superblocks" the profile-guided superblock tier on
    # top of it.  Honors REPRO_TIER so an unmodified suite can be
    # swept across tiers.
    tier: str = field(default_factory=_env_tier)
    # Emit opt-in cosim/parallel_commit trace events (these add events
    # relative to a serial run, so they default off).
    parallel_trace_commits: bool = False
    # DMI binding tier (docs/dmi.md): map bound guest windows directly
    # onto guest RAM so kernel<->ISS data motion is zero-copy, with
    # precise fallback to the transactional tier.  Ignored by the
    # local scheme; contexts with a fault plan or reliable transport
    # stay transactional (the dmi-safe contract).
    dmi: bool = False
    # Observability (docs/observability.md): an obs.Tracer attached to
    # the kernel before the scheme is wired, so every layer shares it.
    tracer: Optional[object] = None
    # Per-quantum telemetry time-series (docs/observability.md): a
    # MetricsSampler attached as a kernel trace sink records one
    # deterministic counter point per committed quantum.  Cheap (one
    # progress check per timestep, a point only on sync progress) and
    # byte-identical serial vs parallel; disable to shave the last
    # percent off a hot benchmark loop.
    telemetry: bool = True


@dataclass
class SystemStats:
    """The numbers the evaluation section reports."""

    generated: int
    input_drops: int
    forwarded: int
    received: int
    corrupt: int
    output_drops: int
    forwarded_percent: float
    latency_mean_fs: float = 0.0
    latency_p95_fs: float = 0.0
    metrics: dict = field(default_factory=dict)


def validate_config(config):
    """Reject impossible topology/traffic configurations loudly.

    Raises :class:`~repro.errors.CosimError` with a one-line message —
    the CLI surfaces these verbatim with exit code 2, and the fuzzer's
    scenario space promises never to sample a config this rejects.
    """
    from repro.router.traffic import traffic_from_dict

    if config.scheme not in SCHEMES:
        raise CosimError("unknown scheme %r (one of %s)"
                         % (config.scheme, ", ".join(SCHEMES)))
    if config.num_cpus < 1:
        raise CosimError("num_cpus must be >= 1")
    if config.tier not in TIERS:
        raise CosimError("unknown tier %r (one of %s)"
                         % (config.tier, ", ".join(TIERS)))
    if config.num_ports < 2:
        raise CosimError("num_ports must be >= 2 (an NxN router needs "
                         "N >= 2), got %d" % config.num_ports)
    if config.inter_packet_delay <= 0:
        raise CosimError("inter_packet_delay must be positive, got %r"
                         % (config.inter_packet_delay,))
    if config.burst < 1:
        raise CosimError("burst must be >= 1, got %r" % (config.burst,))
    if config.stages is not None:
        widths = list(config.stages)
        if not widths:
            raise CosimError("stages must name at least one stage width")
        for width in widths:
            if not isinstance(width, int) or width < 2:
                raise CosimError("stage widths must be integers >= 2, "
                                 "got %r" % (width,))
            if width != config.num_ports:
                raise CosimError(
                    "non-square stage spec: stage width %d != num_ports "
                    "%d (every stage of the fabric must be NxN)"
                    % (width, config.num_ports))
    # Building the traffic model validates its parameters.
    traffic_from_dict(config.traffic, config.inter_packet_delay,
                      config.burst)


class RouterSystem:
    """A fully-wired case-study instance."""

    def __init__(self, config):
        validate_config(config)
        self.config = config
        self.kernel = Kernel("system:" + config.scheme)
        if config.tracer is not None:
            self.kernel.attach_tracer(config.tracer)
        self.clock = Clock(config.clock_period, "clk")
        self.metrics = CosimMetrics()
        self.dispatcher = make_dispatcher(
            config.parallel, config.workers, tracer=self.kernel.tracer,
            trace_commits=config.parallel_trace_commits)
        self.cpus = []
        self.rtoses = []
        self.scheme = None
        self.app = None
        self.engines = self._build_engines()
        self.engine = self.engines[0]
        self.routers = self._build_topology()
        self.router = self.routers[-1]      # the egress (checksum) stage
        self.table = self.router.routing_table
        producer_count = config.producer_count or config.num_ports
        ingress = self.routers[0]
        self.producers = [
            Producer("producer%d" % index,
                     ingress.inputs[index % config.num_ports],
                     config.inter_packet_delay,
                     config.num_addresses,
                     seed=config.seed + index,
                     source_address=index,
                     max_packets=config.max_packets,
                     burst=config.burst,
                     traffic=config.traffic)
            for index in range(producer_count)
        ]
        self.consumers = [
            Consumer("consumer%d" % index, self.router.outputs[index],
                     algorithm=config.algorithm)
            for index in range(config.num_ports)
        ]
        self._wire_scheme()
        # Wall-time attribution profiler slot (repro.obs.attrib's
        # attach_attrib fills it post-build; host-only, never gated).
        self.attrib = None
        # Per-quantum telemetry sampler (repro.obs.metrics).  The local
        # scheme has no sync traffic to sample, so it stays None there.
        self.telemetry = None
        if config.telemetry and self.scheme is not None:
            from repro.obs.metrics import MetricsSampler
            self.telemetry = MetricsSampler(self)
            self.kernel.add_trace(self.telemetry)

    # -- construction helpers -------------------------------------------------

    @property
    def cpu(self):
        """The first checksum CPU (None for the local scheme)."""
        return self.cpus[0] if self.cpus else None

    @property
    def tracer(self):
        """The kernel's observability tracer (NULL_TRACER if unset)."""
        return self.kernel.tracer

    @property
    def rtos(self):
        """The first guest RTOS (Driver-Kernel scheme only)."""
        return self.rtoses[0] if self.rtoses else None

    def _build_topology(self):
        """Build the router fabric: one NxN router, or a pipeline.

        A single-stage topology is the paper's Figure 6 system,
        byte-identical to every pre-topology run.  A multi-stage spec
        chains ``len(stages)`` NxN routers: each stage's output queues
        *are* the next stage's input queues (no copy modules), stage
        *k* routes on address digit ``depth-1-k`` base N (so the
        egress stage routes exactly like the single router), and only
        the egress stage drives the ISS checksum engines — earlier
        stages forward through zero-latency local engines, modeling a
        fabric with checksum offload at the egress.
        """
        config = self.config
        widths = list(config.stages) if config.stages else \
            [config.num_ports]
        depth = len(widths)
        if depth == 1:
            table = RoutingTable.modulo(config.num_addresses,
                                        config.num_ports)
            return [Router("router", table, self.engines,
                           config.num_ports, config.input_capacity,
                           config.output_capacity)]
        routers = []
        inputs = None
        for stage in range(depth):
            last = stage == depth - 1
            table = RoutingTable.stage_modulo(
                config.num_addresses, config.num_ports, stage, depth)
            engines = self.engines if last else [LocalChecksumEngine(
                "stage%d_fwd" % stage, latency=0,
                algorithm=config.algorithm)]
            # Inter-stage queues act as the next stage's input buffers,
            # so they get the input capacity; only the egress queues —
            # drained by consumers — get the output capacity.
            capacity = (config.output_capacity if last
                        else config.input_capacity)
            router = Router("router%d" % stage, table, engines,
                            config.num_ports, config.input_capacity,
                            capacity, inputs=inputs)
            routers.append(router)
            inputs = router.outputs
        return routers

    def _build_engines(self):
        scheme = self.config.scheme
        count = self.config.num_cpus
        if scheme == "local":
            return [LocalChecksumEngine("chk_local%d" % i,
                                        latency=self.config.local_latency,
                                        algorithm=self.config.algorithm)
                    for i in range(count)]
        if scheme in ("gdb-wrapper", "gdb-kernel"):
            return [GdbChecksumEngine("chk_gdb%d" % i)
                    for i in range(count)]
        return [DriverChecksumEngine("chk_drv%d" % i)
                for i in range(count)]

    def _wire_scheme(self):
        scheme_name = self.config.scheme
        if scheme_name == "local":
            return
        if scheme_name in ("gdb-wrapper", "gdb-kernel"):
            self._wire_gdb(scheme_name)
        else:
            self._wire_driver()

    def _wire_gdb(self, scheme_name):
        config = self.config
        self.app = build_gdb_app(config.app_origin, config.algorithm,
                                 config.checksum_rounds,
                                 blocked=config.blocked_transfers)
        if scheme_name == "gdb-kernel":
            self.scheme = GdbKernelScheme(self.kernel, self.metrics,
                                          config.watchdog_ticks,
                                          sync_quantum=config.sync_quantum,
                                          dispatcher=self.dispatcher)
        else:
            self.scheme = GdbWrapperScheme(self.kernel, self.clock,
                                           self.metrics,
                                           config.watchdog_ticks,
                                           sync_quantum=config.sync_quantum,
                                           dispatcher=self.dispatcher)
        for index, engine in enumerate(self.engines):
            cpu = Cpu(name="cpu%d" % index)
            cpu.tier = config.tier
            load_program(cpu, self.app.program,
                         stack_top=config.stack_top)
            self.cpus.append(cpu)
            self.scheme.attach_cpu(cpu, self.app.pragma_map,
                                   engine.variable_ports(),
                                   config.cpu_hz,
                                   reliability=config.reliability,
                                   faults=config.fault_plan,
                                   dmi=config.dmi)
        self.scheme.elaborate()

    def _wire_driver(self):
        config = self.config
        self.app = build_driver_app(config.app_origin, config.algorithm,
                                    config.checksum_rounds)
        self.scheme = DriverKernelScheme(self.kernel, self.metrics,
                                         config.watchdog_ticks,
                                         sync_quantum=config.sync_quantum,
                                         dispatcher=self.dispatcher)
        self.drivers = []
        for index, engine in enumerate(self.engines):
            cpu = Cpu(name="cpu%d" % index)
            cpu.tier = config.tier
            load_program(cpu, self.app.program,
                         stack_top=config.stack_top)
            self.cpus.append(cpu)
            rtos = RtosKernel(cpu, config.rtos_costs,
                              name="rtos%d" % index)
            rtos.create_semaphore(DATA_SEMAPHORE_ID, 0, "data_ready")
            rtos.create_thread("checksum_main", self.app.entry,
                               config.stack_top)
            self.rtoses.append(rtos)
            context = self.scheme.attach_rtos(
                rtos, engine.socket_ports(), config.cpu_hz,
                reliability=config.reliability,
                faults=config.fault_plan,
                dmi=config.dmi)
            driver = CosimPortDriver(
                CHECKSUM_DEVICE_ID, "chk_dev%d" % index,
                rx_ports=[engine.data_port.variable],
                tx_port=engine.result_port.variable,
                irq_vector=CHECKSUM_IRQ_VECTOR,
                data_endpoint=context.guest_data_endpoint,
            )
            rtos.register_driver(driver)
            self.drivers.append(driver)
            engine.raise_irq = (
                lambda vector, ctx=context:
                self.scheme.raise_interrupt(ctx, vector))
        self.driver = self.drivers[0]
        self.scheme.elaborate()

    # -- running --------------------------------------------------------------

    def run(self, duration):
        """Advance the co-simulation by *duration* femtoseconds."""
        result = self.kernel.run(duration)
        if self.scheme is not None and hasattr(self.scheme, "flush_pending"):
            # Spend any cycle budget still banked by a sync quantum > 1
            # so a run boundary never strands guest execution.
            self.scheme.flush_pending()
        if self.telemetry is not None:
            # Flushed budgets happen after the last timestep's sample;
            # the progress gate makes this final sample a no-op unless
            # the flush actually synced, so run slicing stays
            # deterministic.
            self.telemetry.sample(self.kernel)
        return result

    def close(self):
        """Release parallel execution resources (idempotent).

        Shuts down the dispatcher pool and detaches any forked ISS
        workers, syncing their final state back and destroying the
        shared-memory guest RAM segments.  Serial systems no-op.
        """
        if self.dispatcher is not None:
            self.dispatcher.shutdown()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def parallel_stats(self, wall_seconds=None):
        """Dispatcher pool/worker stats (None when running serial)."""
        if self.dispatcher is None:
            return None
        return self.dispatcher.stats.as_dict(wall_seconds)

    def bindings(self):
        """``(context name, ClockBinding)`` pairs (empty for local)."""
        if self.scheme is None or not hasattr(self.scheme, "bindings"):
            return []
        return self.scheme.bindings()

    def fold_cpu_counters(self):
        """Fold the ISS tier counters into the shared metrics.

        Idempotent (assignment, not accumulation), so :meth:`stats`
        and checkpoint capture can both call it in any order.  The
        per-context tier breakdown stays numeric only:
        ``CosimMetrics.aggregate`` folds ``per_context`` values by
        summation.
        """
        self.metrics.blocks_compiled = sum(
            cpu.blocks_compiled for cpu in self.cpus)
        self.metrics.block_hits = sum(cpu.block_hits for cpu in self.cpus)
        self.metrics.block_invalidations = sum(
            cpu.block_invalidations for cpu in self.cpus)
        self.metrics.superblocks_compiled = sum(
            cpu.superblocks_compiled for cpu in self.cpus)
        self.metrics.superblock_exits = sum(
            cpu.superblock_exits for cpu in self.cpus)
        self.metrics.superblock_invalidations = sum(
            cpu.superblock_invalidations for cpu in self.cpus)
        self.metrics.superblock_side_exits = sum(
            cpu.superblock_side_exits for cpu in self.cpus)
        for cpu in self.cpus:
            bucket = self.metrics.per_context.setdefault(cpu.name, {})
            bucket["blocks_compiled"] = cpu.blocks_compiled
            bucket["block_hits"] = cpu.block_hits
            bucket["superblocks_compiled"] = cpu.superblocks_compiled
            bucket["superblock_exits"] = cpu.superblock_exits
            bucket["superblock_side_exits"] = cpu.superblock_side_exits
        # DMI warp accounting per context (ClockBinding.note_warp):
        # reconciled syncs/cycles/steps join the reads/writes/grants
        # breakdown.  Assignment, so the fold stays idempotent.
        for name, binding in self.bindings():
            bucket = self.metrics.per_context.setdefault(name, {})
            bucket["warped_syncs"] = binding.warped_syncs
            bucket["warped_cycles"] = binding.warped_cycles
            bucket["warped_steps"] = binding.warped_steps

    def stats(self):
        """Collect the evaluation statistics of the run so far."""
        self.fold_cpu_counters()
        generated = sum(producer.generated for producer in self.producers)
        received = sum(consumer.received for consumer in self.consumers)
        corrupt = sum(consumer.corrupt for consumer in self.consumers)
        # Forwarded counts egress deliveries; drops are the producers'
        # rejected puts at the ingress plus every stage's failed
        # forwards (an inter-stage rejection is the upstream stage's
        # output drop).
        forwarded = self.router.forwarded
        percent = 100.0 * forwarded / generated if generated else 0.0
        latencies = sorted(latency for consumer in self.consumers
                           for latency in consumer.latencies)
        mean = (sum(latencies) / len(latencies)) if latencies else 0.0
        p95 = latencies[int(0.95 * (len(latencies) - 1))] \
            if latencies else 0.0
        return SystemStats(
            generated=generated,
            input_drops=self.routers[0].input_drops,
            forwarded=forwarded,
            received=received,
            corrupt=corrupt,
            output_drops=sum(router.output_drops
                             for router in self.routers),
            forwarded_percent=percent,
            latency_mean_fs=mean,
            latency_p95_fs=p95,
            metrics=self.metrics.as_dict(),
        )


def build_system(config=None, **overrides):
    """Build a :class:`RouterSystem` from a config or keyword overrides."""
    if config is None:
        config = RouterConfig(**overrides)
    elif overrides:
        raise CosimError("pass either a config object or overrides")
    return RouterSystem(config)


#: RouterConfig fields that serialize as plain JSON values.
_PLAIN_CONFIG_FIELDS = (
    "scheme", "num_ports", "num_addresses", "clock_period", "cpu_hz",
    "inter_packet_delay", "input_capacity", "output_capacity", "seed",
    "max_packets", "app_origin", "memory_size", "stack_top",
    "local_latency", "producer_count", "num_cpus", "algorithm",
    "checksum_rounds", "blocked_transfers", "burst", "stages",
    "watchdog_ticks", "sync_quantum", "parallel", "workers",
    "parallel_trace_commits", "dmi", "tier", "telemetry")


def config_to_dict(config):
    """Serialize a :class:`RouterConfig` to plain JSON types.

    Checkpoints persist configs this way so a restore can rebuild the
    identical system in a fresh process.  The tracer is deliberately
    dropped (the restoring process supplies its own); everything else
    round-trips through :func:`config_from_dict`.
    """
    from dataclasses import asdict

    data = {name: getattr(config, name)
            for name in _PLAIN_CONFIG_FIELDS}
    reliability = config.reliability
    if reliability is True:
        data["reliability"] = True
    elif reliability is not None:
        data["reliability"] = asdict(reliability)
    else:
        data["reliability"] = None
    data["fault_plan"] = (config.fault_plan.to_dict()
                          if config.fault_plan is not None else None)
    data["rtos_costs"] = (asdict(config.rtos_costs)
                          if config.rtos_costs is not None else None)
    from repro.router.traffic import normalize_traffic_spec
    data["traffic"] = normalize_traffic_spec(config.traffic)
    if data["stages"] is not None:
        data["stages"] = list(data["stages"])
    return data


def config_from_dict(data, tracer=None):
    """Rebuild a :class:`RouterConfig` from :func:`config_to_dict`."""
    from repro.cosim.faults import FaultPlan
    from repro.cosim.reliable import ReliabilityConfig

    kwargs = {name: data[name] for name in _PLAIN_CONFIG_FIELDS
              if name in data}
    reliability = data.get("reliability")
    if isinstance(reliability, dict):
        reliability = ReliabilityConfig(**reliability)
    kwargs["reliability"] = reliability
    fault_plan = data.get("fault_plan")
    if fault_plan is not None:
        fault_plan = FaultPlan.from_dict(fault_plan)
    kwargs["fault_plan"] = fault_plan
    rtos_costs = data.get("rtos_costs")
    if rtos_costs is not None:
        rtos_costs = CostModel(**rtos_costs)
    kwargs["rtos_costs"] = rtos_costs
    kwargs["traffic"] = data.get("traffic")
    return RouterConfig(tracer=tracer, **kwargs)
