"""The 4x4 router.

"All packets coming into the router are buffered into a FIFO queue …
The main process of the router takes the first packet in the queue and
reads its destination address. By looking in the routing table the
correct output port is used to send out the packet. Before sending the
packet, the checksum is computed on the packet to detect possible
errors." (paper Section 5)
"""

from repro.errors import SimulationError
from repro.sysc.fifo import Fifo
from repro.sysc.module import Module


class Router(Module):
    """FIFO-buffered store-and-forward router with checksum offload."""

    def __init__(self, name, routing_table, engine, num_ports=4,
                 input_capacity=8, output_capacity=32, kernel=None,
                 inputs=None):
        """*engine* may be a single checksum engine or a list of them;
        with a list, the router runs one forwarding worker per engine
        (the multi-processor configuration: checksum load is spread
        over several CPUs).  *inputs* may supply pre-existing FIFOs —
        typically the output queues of an upstream router stage — in
        place of freshly created input queues."""
        super().__init__(name, kernel)
        if num_ports < 1:
            raise SimulationError("router needs at least one port")
        self.routing_table = routing_table
        self.engines = list(engine) if isinstance(engine, (list, tuple)) \
            else [engine]
        if not self.engines:
            raise SimulationError("router needs at least one engine")
        self.engine = self.engines[0]
        self.num_ports = num_ports
        if inputs is not None:
            if len(inputs) != num_ports:
                raise SimulationError(
                    "router %r got %d input queues for %d ports"
                    % (name, len(inputs), num_ports))
            self.inputs = list(inputs)
        else:
            self.inputs = [Fifo(input_capacity, "%s.in%d" % (name, i),
                                kernel)
                           for i in range(num_ports)]
        self.outputs = [Fifo(output_capacity, "%s.out%d" % (name, i), kernel)
                        for i in range(num_ports)]
        self.forwarded = 0
        self.output_drops = 0
        self._scan_position = 0
        for index, worker_engine in enumerate(self.engines):
            self.thread(self._make_worker(worker_engine),
                        name="forward%d" % index)

    # -- statistics ----------------------------------------------------------

    @property
    def input_drops(self):
        """Packets rejected at the input queues (producer-side puts)."""
        return sum(fifo.rejected_count for fifo in self.inputs)

    @property
    def accepted(self):
        return sum(fifo.put_count for fifo in self.inputs)

    # -- behaviour ------------------------------------------------------------

    def _next_packet(self):
        """Round-robin scan of the input queues."""
        for offset in range(self.num_ports):
            index = (self._scan_position + offset) % self.num_ports
            packet = self.inputs[index].nb_get()
            if packet is not None:
                self._scan_position = (index + 1) % self.num_ports
                return packet
        return None

    def _make_worker(self, engine):
        def _forward():
            wait_events = [fifo.data_written for fifo in self.inputs]
            while True:
                packet = self._next_packet()
                if packet is None:
                    yield tuple(wait_events)
                    continue
                checksum = yield from engine.compute(packet)
                packet = packet.with_checksum(checksum)
                port = self.routing_table.lookup(packet.destination)
                if self.outputs[port].nb_put(packet):
                    self.forwarded += 1
                else:
                    self.output_drops += 1
        return _forward
