"""Checksum engines: how the router reaches the software checksum.

"In our testcase, the checksum calculation is performed by an
application executed by a CPU, as commonly done in embedded routers."
(paper Section 5)

Three engines share one interface (submit / wait / take_result):

- :class:`LocalChecksumEngine` — an ideal hardware checksum unit with
  configurable latency; the no-co-simulation control used by tests and
  as the ablation baseline.
- :class:`GdbChecksumEngine` — the GDB-Wrapper/GDB-Kernel device: the
  packet words are published on ``iss_out`` ports (one per guest
  variable of the bare-metal application); the result arrives on an
  ``iss_in`` port from the result-variable breakpoint.
- :class:`DriverChecksumEngine` — the Driver-Kernel device: the whole
  packet payload is posted on one ``iss_out`` port as a byte block, an
  interrupt announces it, and the result arrives as a WRITE message to
  the ``iss_in`` port.
"""

from repro.errors import CosimError
from repro.cosim.ports import IssInPort, IssOutPort, make_iss_process
from repro.router.checksum import reference_checksum
from repro.router.packet import PACKET_WORDS
from repro.sysc.event import Event
from repro.sysc.module import Module

# Guest variable names of the bare-metal checksum application.
GDB_LEN_VAR = "pkt_len"
GDB_WORD_VARS = ["pkt_w%d" % i for i in range(PACKET_WORDS)]
GDB_RESULT_VAR = "chk_result"

# SystemC port names of the Driver-Kernel checksum device.
DRIVER_DATA_PORT = "pkt_data"
DRIVER_RESULT_PORT = "chk_result"
CHECKSUM_IRQ_VECTOR = 5


class ChecksumEngine(Module):
    """Common submit/wait/result machinery."""

    def __init__(self, name, kernel=None):
        super().__init__(name, kernel)
        self.result_ready = Event(name + ".result_ready", kernel)
        self.busy = False
        self.submitted = 0
        self.completed = 0
        self._result = None

    def submit(self, packet):
        """Accept one packet; the engine must be idle."""
        if self.busy:
            raise CosimError("engine %r already has a packet in flight"
                             % self.name)
        self.busy = True
        self.submitted += 1
        self._result = None
        self._start(packet)

    def _start(self, packet):
        raise NotImplementedError

    def _finish(self, checksum):
        self._result = checksum & 0xFFFFFFFF
        self.completed += 1
        self.busy = False
        self.result_ready.notify()

    def take_result(self):
        """Consume the completed checksum (raises if none)."""
        if self._result is None:
            raise CosimError("engine %r has no result ready" % self.name)
        result, self._result = self._result, None
        return result

    def compute(self, packet):
        """Blocking helper for thread processes: ``yield from`` it."""
        self.submit(packet)
        while self._result is None:
            yield self.result_ready
        return self.take_result()


class LocalChecksumEngine(ChecksumEngine):
    """Ideal hardware: computes host-side after a fixed latency."""

    def __init__(self, name="chk_local", latency=0, algorithm="sum",
                 kernel=None):
        super().__init__(name, kernel)
        self.latency = latency
        self.algorithm = algorithm
        self._done = Event(name + ".done", kernel)
        self._pending_words = None
        self.method(self._complete, sensitive=[self._done],
                    dont_initialize=True, name="complete")

    def _start(self, packet):
        self._pending_words = packet.words()
        if self.latency > 0:
            self._done.notify_after(self.latency)
        else:
            self._done.notify_delta()

    def _complete(self):
        words, self._pending_words = self._pending_words, None
        self._finish(reference_checksum(words, self.algorithm))


class GdbChecksumEngine(ChecksumEngine):
    """The checksum device of the two GDB co-simulation schemes."""

    def __init__(self, name="chk_gdb", kernel=None):
        super().__init__(name, kernel)
        self.len_port = IssOutPort(name + ".len", GDB_LEN_VAR, kernel)
        self.word_ports = [
            IssOutPort("%s.w%d" % (name, i), GDB_WORD_VARS[i], kernel)
            for i in range(PACKET_WORDS)
        ]
        self.result_port = IssInPort(name + ".result", GDB_RESULT_VAR,
                                     kernel)
        make_iss_process(self, self._on_result, [self.result_port],
                         name="on_result")

    def variable_ports(self):
        """Guest-variable -> port map for the scheme's attach_cpu."""
        ports = {GDB_LEN_VAR: self.len_port, GDB_RESULT_VAR: self.result_port}
        for variable, port in zip(GDB_WORD_VARS, self.word_ports):
            ports[variable] = port
        return ports

    def _start(self, packet):
        words = packet.words()
        for port, word in zip(self.word_ports, words):
            port.post(word)
        # Posting the length last releases the guest's blocking read.
        self.len_port.post(len(words))

    def _on_result(self):
        self._finish(self.result_port.read())


class DriverChecksumEngine(ChecksumEngine):
    """The checksum device of the Driver-Kernel scheme."""

    def __init__(self, name="chk_drv", raise_irq=None, kernel=None):
        super().__init__(name, kernel)
        self.data_port = IssOutPort(name + ".data", DRIVER_DATA_PORT,
                                    kernel)
        self.result_port = IssInPort(name + ".result", DRIVER_RESULT_PORT,
                                     kernel)
        self.raise_irq = raise_irq    # injected: scheme interrupt request
        self.interrupts_raised = 0
        make_iss_process(self, self._on_result, [self.result_port],
                         name="on_result")

    def socket_ports(self):
        """SC-port-name -> port map for the scheme's attach_rtos."""
        return {DRIVER_DATA_PORT: self.data_port,
                DRIVER_RESULT_PORT: self.result_port}

    def _start(self, packet):
        if self.raise_irq is None:
            raise CosimError("engine %r has no interrupt line wired"
                             % self.name)
        self.data_port.post(packet.payload_bytes())
        self.raise_irq(CHECKSUM_IRQ_VECTOR)
        self.interrupts_raised += 1

    def _on_result(self):
        self._finish(self.result_port.read())
