"""Reference checksums.

Host-side references for the algorithms the guest applications
implement in R32 assembly (:mod:`repro.apps.sources`):

- ``"sum"`` — sum the packet words modulo 2**32 and complement.
  Carry-free, so host and guest are bit-identical; the light workload
  of the paper's case study.
- ``"crc32"`` — the reflected IEEE CRC-32 (the zlib/ethernet
  polynomial), computed bitwise over the payload bytes.  A realistic
  heavier workload (~70x the guest cycles of ``"sum"``) used by the
  workload-sensitivity experiments.
"""

MASK = 0xFFFFFFFF
CRC32_POLYNOMIAL = 0xEDB88320
ALGORITHMS = ("sum", "crc32")


def sum_checksum(words):
    """Complemented modulo-2**32 sum of 32-bit words."""
    total = 0
    for word in words:
        total = (total + (word & MASK)) & MASK
    return (~total) & MASK


def crc32_checksum(words):
    """Reflected CRC-32 over the words' little-endian byte stream."""
    crc = MASK
    for word in words:
        for shift in (0, 8, 16, 24):
            crc ^= (word >> shift) & 0xFF
            for __ in range(8):
                crc = (crc >> 1) ^ (CRC32_POLYNOMIAL if crc & 1 else 0)
    return crc ^ MASK


_REFERENCES = {"sum": sum_checksum, "crc32": crc32_checksum}


def reference_checksum(words, algorithm="sum"):
    """Checksum of an iterable of 32-bit words."""
    try:
        return _REFERENCES[algorithm](words)
    except KeyError:
        raise ValueError("unknown checksum algorithm %r (one of %s)"
                         % (algorithm, ", ".join(ALGORITHMS)))


def packet_checksum(packet, algorithm="sum"):
    """Checksum of a :class:`~repro.router.packet.Packet`."""
    return reference_checksum(packet.words(), algorithm)


def verify_packet(packet, algorithm="sum"):
    """True when the packet's checksum field matches its contents."""
    return packet.checksum == packet_checksum(packet, algorithm)
