"""The paper's case study (Section 5): a 4x4 packet router.

An extension of the *Multicast Helix Packet Switch* example shipped
with SystemC 2.0.1: four input ports, four output ports, FIFO input
queues, a static routing table, and packets carrying source address,
destination address, packet identifier, data and checksum.  The
checksum is computed by an application executing on the ISS — via
either co-simulation scheme — "as commonly done in embedded routers".
"""

from repro.router.packet import Packet, PACKET_WORDS, DATA_WORDS
from repro.router.checksum import reference_checksum, verify_packet
from repro.router.routing_table import RoutingTable
from repro.router.producer import Producer
from repro.router.consumer import Consumer
from repro.router.router import Router
from repro.router.engines import (ChecksumEngine, LocalChecksumEngine,
                                  GdbChecksumEngine, DriverChecksumEngine)
from repro.router.system import RouterConfig, RouterSystem, build_system

__all__ = [
    "Packet", "PACKET_WORDS", "DATA_WORDS", "reference_checksum",
    "verify_packet", "RoutingTable", "Producer", "Consumer", "Router",
    "ChecksumEngine", "LocalChecksumEngine", "GdbChecksumEngine",
    "DriverChecksumEngine", "RouterConfig", "RouterSystem", "build_system",
]
