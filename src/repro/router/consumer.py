"""Packet consumer.

"The consumer is also a SystemC module attached to an output port of
the router, that analyzes the integrity of the received packet."
(paper Section 5)
"""

from repro.router.checksum import verify_packet
from repro.sysc.module import Module


class Consumer(Module):
    """Drains one router output FIFO, verifying checksums."""

    def __init__(self, name, output_fifo, algorithm="sum", kernel=None):
        super().__init__(name, kernel)
        self.output_fifo = output_fifo
        self.algorithm = algorithm
        self.received = 0
        self.corrupt = 0
        self.by_source = {}
        self.latencies = []          # femtoseconds, per packet
        self.thread(self._consume, name="consume")

    def _consume(self):
        while True:
            packet = yield from self.output_fifo.get()
            self.received += 1
            self.by_source[packet.source] = \
                self.by_source.get(packet.source, 0) + 1
            self.latencies.append(self.kernel.now - packet.created_at)
            if not verify_packet(packet, self.algorithm):
                self.corrupt += 1
