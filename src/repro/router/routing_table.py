"""The static routing table.

"The forwarding process is based on a static routing table embedded
into the router … each entry matches a destination address and an
output port." (paper Section 5)
"""

from repro.errors import ReproError


class RoutingTable:
    """destination address -> output port index."""

    def __init__(self, entries=None, default_port=None):
        self._entries = dict(entries or {})
        self.default_port = default_port
        self.lookup_count = 0
        self.miss_count = 0

    def __len__(self):
        return len(self._entries)

    def add(self, destination, port):
        """Add (or replace) the route for *destination*."""
        self._entries[destination] = port

    def lookup(self, destination):
        """Output port for *destination*; default route on a miss."""
        self.lookup_count += 1
        port = self._entries.get(destination)
        if port is None:
            self.miss_count += 1
            if self.default_port is None:
                raise ReproError("no route for destination %d and no "
                                 "default route" % destination)
            return self.default_port
        return port

    @classmethod
    def modulo(cls, num_addresses, num_ports):
        """The case-study table: address *a* exits on port ``a % ports``."""
        return cls({address: address % num_ports
                    for address in range(num_addresses)})

    @classmethod
    def stage_modulo(cls, num_addresses, num_ports, stage, num_stages):
        """The table of stage *stage* in an *num_stages*-deep fabric.

        Stage *k* (0-based from the ingress) routes on digit
        ``num_stages - 1 - k`` of the destination address written in
        base *num_ports*, so the egress stage routes exactly like the
        single-router :meth:`modulo` table and earlier stages spread
        traffic across the fabric butterfly-style.
        """
        if not 0 <= stage < num_stages:
            raise ReproError("stage %d outside fabric of depth %d"
                             % (stage, num_stages))
        shift = num_ports ** (num_stages - 1 - stage)
        return cls({address: (address // shift) % num_ports
                    for address in range(num_addresses)})
