"""The static routing table.

"The forwarding process is based on a static routing table embedded
into the router … each entry matches a destination address and an
output port." (paper Section 5)
"""

from repro.errors import ReproError


class RoutingTable:
    """destination address -> output port index."""

    def __init__(self, entries=None, default_port=None):
        self._entries = dict(entries or {})
        self.default_port = default_port
        self.lookup_count = 0
        self.miss_count = 0

    def __len__(self):
        return len(self._entries)

    def add(self, destination, port):
        """Add (or replace) the route for *destination*."""
        self._entries[destination] = port

    def lookup(self, destination):
        """Output port for *destination*; default route on a miss."""
        self.lookup_count += 1
        port = self._entries.get(destination)
        if port is None:
            self.miss_count += 1
            if self.default_port is None:
                raise ReproError("no route for destination %d and no "
                                 "default route" % destination)
            return self.default_port
        return port

    @classmethod
    def modulo(cls, num_addresses, num_ports):
        """The case-study table: address *a* exits on port ``a % ports``."""
        return cls({address: address % num_ports
                    for address in range(num_addresses)})
