"""Pluggable seeded traffic models for the packet producers.

The paper's case study offers one packet every *inter-packet delay*
(Figure 7's x axis).  Real SoC traffic is rarely that polite, so the
producers accept a :class:`TrafficModel` that decides how many packets
go out back-to-back and how long the module then idles:

- :class:`UniformTraffic` — the paper's smooth stream (the default);
- :class:`BurstyTraffic` — *burst* packets back-to-back, then a
  ``burst * delay`` idle: the same analytic mean rate as the smooth
  stream, but a peak arrival rate that stresses the input queues;
- :class:`OnOffTraffic` — a Markov-modulated on/off source: geometric
  ON runs at the base rate separated by geometric OFF idles;
- :class:`TraceTraffic` — a replayed gap trace, cycled.

Every model is a serializable config (``to_dict``/:func:`traffic_from_dict`,
the :class:`~repro.cosim.faults.FaultPlan` pattern), draws randomness
only from the RNG handed to :meth:`TrafficModel.gap` (never from the
packet-content stream, so switching models cannot perturb packet
payloads), and states its analytic mean inter-packet gap via
:meth:`TrafficModel.mean_gap` — the property the rate tests assert
against.
"""

from repro.errors import CosimError

TRAFFIC_KINDS = ("uniform", "bursty", "onoff", "trace")


class TrafficModel:
    """One packet-pacing policy of a producer."""

    kind = None

    def batch(self):
        """Packets offered back-to-back before the next idle."""
        return 1

    def gap(self, rng):
        """Idle time in femtoseconds after one batch."""
        raise NotImplementedError

    def mean_gap(self):
        """Analytic mean inter-packet gap in femtoseconds."""
        raise NotImplementedError

    def to_dict(self):
        """The model as a plain-JSON config spec."""
        raise NotImplementedError


class UniformTraffic(TrafficModel):
    """The paper's smooth stream: one packet per *delay*."""

    kind = "uniform"

    def __init__(self, delay):
        if delay <= 0:
            raise CosimError("traffic: inter-packet delay must be "
                             "positive, got %r" % (delay,))
        self.delay = delay

    def gap(self, rng):
        return self.delay

    def mean_gap(self):
        return self.delay

    def to_dict(self):
        return {"kind": self.kind}


class BurstyTraffic(TrafficModel):
    """*burst* packets back-to-back, then a ``burst * delay`` idle.

    The idle scales with the burst so the analytic mean rate equals
    the uniform stream's ``1 / delay`` — only the peak rate changes.
    """

    kind = "bursty"

    def __init__(self, delay, burst):
        if delay <= 0:
            raise CosimError("traffic: inter-packet delay must be "
                             "positive, got %r" % (delay,))
        if not isinstance(burst, int) or burst < 1:
            raise CosimError("traffic: burst must be an integer >= 1, "
                             "got %r" % (burst,))
        self.delay = delay
        self.burst = burst

    def batch(self):
        return self.burst

    def gap(self, rng):
        return self.burst * self.delay

    def mean_gap(self):
        return self.delay

    def to_dict(self):
        return {"kind": self.kind, "burst": self.burst}


class OnOffTraffic(TrafficModel):
    """Markov-modulated on/off source.

    While ON, packets go out one per *delay*; after each packet the
    source flips OFF with probability ``1 / on_mean`` (geometric ON
    runs with mean *on_mean* packets).  An OFF period idles a
    geometric number of delay slots with mean *off_mean*.  Analytic
    mean gap: ``delay * (1 + off_mean / on_mean)``.
    """

    kind = "onoff"

    def __init__(self, delay, on_mean=4, off_mean=4):
        if delay <= 0:
            raise CosimError("traffic: inter-packet delay must be "
                             "positive, got %r" % (delay,))
        if on_mean < 1 or off_mean < 1:
            raise CosimError("traffic: on/off means must be >= 1, got "
                             "on_mean=%r off_mean=%r"
                             % (on_mean, off_mean))
        self.delay = delay
        self.on_mean = on_mean
        self.off_mean = off_mean

    def gap(self, rng):
        if rng.random() >= 1.0 / self.on_mean:
            return self.delay
        off_slots = 1
        while rng.random() >= 1.0 / self.off_mean:
            off_slots += 1
        return self.delay * (1 + off_slots)

    def mean_gap(self):
        return self.delay * (1 + self.off_mean / self.on_mean)

    def to_dict(self):
        return {"kind": self.kind, "on_mean": self.on_mean,
                "off_mean": self.off_mean}


class TraceTraffic(TrafficModel):
    """A replayed inter-packet gap trace, cycled when exhausted.

    *gaps* are femtosecond idle times, typically captured from a real
    run; each producer keeps its own replay position.
    """

    kind = "trace"

    def __init__(self, gaps):
        gaps = list(gaps)
        if not gaps:
            raise CosimError("traffic: a trace needs at least one gap")
        if any(not isinstance(gap, int) or gap <= 0 for gap in gaps):
            raise CosimError("traffic: trace gaps must be positive "
                             "integers, got %r" % (gaps,))
        self.gaps = gaps
        self._position = 0

    def gap(self, rng):
        value = self.gaps[self._position]
        self._position = (self._position + 1) % len(self.gaps)
        return value

    def mean_gap(self):
        return sum(self.gaps) / len(self.gaps)

    def to_dict(self):
        return {"kind": self.kind, "gaps": list(self.gaps)}


def traffic_from_dict(spec, delay, burst=1):
    """Build a :class:`TrafficModel` from a config spec.

    *spec* is ``None`` (the legacy ``inter_packet_delay``/``burst``
    fields decide: uniform, or bursty when ``burst > 1``), an already
    built model (passed through), or a ``{"kind": ...}`` dict as
    produced by ``to_dict``.  *delay* supplies the base inter-packet
    delay for the kinds that pace relative to it.  Raises
    :class:`~repro.errors.CosimError` on unknown kinds or invalid
    parameters.
    """
    if isinstance(spec, TrafficModel):
        return spec
    if spec is None:
        if burst > 1:
            return BurstyTraffic(delay, burst)
        return UniformTraffic(delay)
    if not isinstance(spec, dict):
        raise CosimError("traffic: spec must be None, a TrafficModel, "
                         "or a dict, got %r" % (spec,))
    kind = spec.get("kind")
    if kind == "uniform":
        return UniformTraffic(delay)
    if kind == "bursty":
        return BurstyTraffic(delay, spec.get("burst", burst))
    if kind == "onoff":
        return OnOffTraffic(delay, on_mean=spec.get("on_mean", 4),
                            off_mean=spec.get("off_mean", 4))
    if kind == "trace":
        return TraceTraffic(spec.get("gaps", ()))
    raise CosimError("traffic: unknown kind %r (one of %s)"
                     % (kind, ", ".join(TRAFFIC_KINDS)))


def normalize_traffic_spec(spec):
    """The plain-JSON form of a traffic spec (for config serialization)."""
    if spec is None:
        return None
    if isinstance(spec, TrafficModel):
        return spec.to_dict()
    if isinstance(spec, dict):
        return dict(spec)
    raise CosimError("traffic: spec must be None, a TrafficModel, or a "
                     "dict, got %r" % (spec,))
