"""Command-line interface.

``python -m repro <command>`` runs the paper's experiments from the
shell:

- ``table1 [--quick]`` — the Table 1 performance comparison;
- ``fig7 [--sim-ms N]`` — the Figure 7 forwarding sweep;
- ``loc`` — the Section 5 code-complexity report;
- ``router --scheme S [--delay-us N] [--sim-ms N] [--cpus N]
  [--ports N] [--stages N,N,...] [--burst N] [--dmi]
  [--checkpoint-every N --checkpoint-dir D] [--resume-from PATH]`` —
  one case-study run with statistics — any NxN or multi-stage fabric
  (docs/fuzzing.md), optionally over the zero-copy DMI binding tier
  (docs/dmi.md), checkpointed (with crash recovery) or resumed from a
  snapshot; impossible topology/traffic parameters exit 2 with a
  one-line message;
- ``fuzz --seed S --budget N [--failures-dir D] [--corpus-dir D
  --write-corpus] [--replay PATH]`` — the seeded scenario fuzzer
  (docs/fuzzing.md): samples composed scenarios, judges each with the
  three-part oracle (health findings, serial-vs-parallel
  byte-identity, checkpoint round-trip), minimizes and saves failures;
  ``--replay`` re-judges saved fixtures (a file or a directory), exit
  2 when the path is missing, 1 when any scenario fails;
- ``checkpoint save|restore|verify`` — deterministic snapshot/restore
  with replay verification (docs/checkpoint.md); ``verify`` exits 2
  with a one-line message when the file is missing or corrupt;
- ``trace [--scheme S|all] [--format chrome|text|json]`` — a traced
  quickstart-scale run with a per-scheme profile comparison (the json
  format leads with a metadata header line naming the scheme, seed,
  simulated time, quantum and repro version);
- ``spans [--scheme S|all] [--format table|json|perfetto]`` — causal
  transaction spans reconstructed from a traced run
  (docs/observability.md), exportable as Perfetto async slices;
- ``health [--records D [--baseline-dir D]] [--checkpoint-dir D]
  [--chaos storm|stall|thrash] [--format text|json]`` — the rule-based
  co-simulation health analyzer (``--checkpoint-dir`` reports
  crash-recovery events; ``--format json`` emits the machine-readable
  report with identical exit semantics); exits non-zero when any
  finding is critical, 2 with a one-line message when a named
  records/baseline/checkpoint directory is missing;
- ``metrics [--scheme S] [--format ndjson|json|prom] [-o PATH]`` —
  the per-quantum telemetry time-series of a pinned scenario
  (docs/observability.md): one point per committed sync quantum,
  exportable as NDJSON, canonical JSON or Prometheus text exposition;
- ``top [--scheme S] [--once]`` — a live ``top``-style counter view:
  totals and windowed per-quantum rates, redrawn between simulated
  time slices (``--once`` prints a single final snapshot for CI);
- ``bench [--scheme S|all] [--out-dir D] [--quantum N] [--dmi]
  [--tier T]
  [--compare]`` — machine-readable ``BENCH_*.json`` benchmark records
  (docs/observability.md), optionally over the DMI tier (docs/dmi.md),
  optionally gated against the committed baselines in
  ``benchmarks/baselines/`` (docs/performance.md);
- ``version``.
"""

import argparse

from repro.sysc.simtime import MS, US
from repro.version import __version__


def _cmd_table1(args):
    from repro.analysis.table1 import run_table1
    from repro.analysis.tables import render_table

    sim_times = ((1 * MS, 4 * MS) if args.quick
                 else (1 * MS, 10 * MS, 100 * MS))
    rows = run_table1(sim_times=sim_times)
    headers = ["scheme"] + ["%d ms" % (t // MS) for t in sim_times]
    print(render_table(
        headers,
        [[row.scheme] + ["%.3f s" % w for w in row.wall_seconds]
         for row in rows],
        title="Table 1 - co-simulation wall-clock time"))
    baseline = rows[0]
    print()
    print(render_table(
        headers,
        [[row.scheme] + ["%.2fx" % s
                         for s in row.speedup_against(baseline)]
         for row in rows[1:]],
        title="Speedup vs %s (paper: ~1.3x / ~3x)" % baseline.scheme))
    return 0


def _cmd_fig7(args):
    from repro.analysis.fig7 import DEFAULT_DELAYS, run_fig7
    from repro.analysis.tables import render_table

    data = run_fig7(sim_time=args.sim_ms * MS)
    rows = []
    for index, delay in enumerate(DEFAULT_DELAYS):
        rows.append(["%d us" % (delay // US),
                     "%.1f" % data["gdb-kernel"][index].forwarded_percent,
                     "%.1f" % data["driver-kernel"][index]
                     .forwarded_percent])
    print(render_table(["delay", "gdb-kernel %", "driver-kernel %"], rows,
                       title="Figure 7 - forwarding vs inter-packet "
                             "delay"))
    return 0


def _cmd_loc(args):
    from repro.analysis.loc import loc_report

    report = loc_report()
    print("Section 5 code-complexity report")
    print("  SystemC side: gdb-kernel %d, driver-kernel %d lines "
          "(+%.0f%%, paper ~+40%%)" % (report.gdb_systemc,
                                       report.driver_systemc,
                                       report.systemc_overhead_percent))
    print("  guest side:   gdb-kernel %d, driver-kernel %d lines "
          "(%.1fx, paper ~9x in C)" % (report.gdb_guest,
                                       report.driver_guest,
                                       report.guest_factor))
    return 0


def _print_recoveries(runner):
    for entry in runner.recovery_log:
        print("recovered %s from %s in slice %d (attempt %d)"
              % (entry["context"], entry["code"], entry["slice"],
                 entry["attempt"]))


def _parse_stages(text):
    """``"4,4"`` → ``[4, 4]``; None passes through."""
    from repro.errors import CosimError

    if not text:
        return None
    try:
        return [int(part) for part in text.split(",")]
    except ValueError:
        raise CosimError("stages must be a comma-separated list of "
                         "integers, got %r" % text)


def _cmd_router(args):
    from repro.errors import CosimError

    try:
        stages = _parse_stages(args.stages)
        topology = dict(num_ports=args.ports, stages=stages,
                        burst=args.burst, dmi=args.dmi)
        if args.resume_from or args.checkpoint_every:
            from repro.router.system import RouterConfig, validate_config
            validate_config(RouterConfig(scheme=args.scheme, **topology))
        return _run_router(args, topology)
    except CosimError as error:
        print("router: %s" % error)
        return 2


def _run_router(args, topology):
    from repro.router.system import build_system

    if args.resume_from:
        from repro.cosim.checkpoint import (RecoveryPolicy,
                                            restore_checkpoint)
        from repro.errors import CheckpointError

        try:
            runner = restore_checkpoint(args.resume_from,
                                        out_dir=args.checkpoint_dir,
                                        recovery=RecoveryPolicy())
        except CheckpointError as error:
            print("router: cannot resume: %s" % error)
            return 2
        stats = runner.run(args.sim_ms * MS)
        _print_recoveries(runner)
        runner.close()
    elif args.checkpoint_every:
        from repro.cosim.checkpoint import (CheckpointRunner,
                                            RecoveryPolicy)
        from repro.router.system import RouterConfig

        config = RouterConfig(scheme=args.scheme,
                              inter_packet_delay=args.delay_us * US,
                              num_cpus=args.cpus, **topology)
        runner = CheckpointRunner(config,
                                  checkpoint_every=args.checkpoint_every,
                                  out_dir=args.checkpoint_dir,
                                  recovery=RecoveryPolicy())
        stats = runner.run(args.sim_ms * MS)
        _print_recoveries(runner)
        runner.close()
    else:
        system = build_system(scheme=args.scheme,
                              inter_packet_delay=args.delay_us * US,
                              num_cpus=args.cpus, **topology)
        system.run(args.sim_ms * MS)
        stats = system.stats()
        system.close()
    print("scheme=%s cpus=%d delay=%dus sim=%dms" % (
        args.scheme, args.cpus, args.delay_us, args.sim_ms))
    print("generated=%d forwarded=%d (%.1f%%) received=%d corrupt=%d "
          "input_drops=%d" % (stats.generated, stats.forwarded,
                              stats.forwarded_percent, stats.received,
                              stats.corrupt, stats.input_drops))
    return 0 if stats.corrupt == 0 else 1


def _cmd_checkpoint_save(args):
    from repro.cosim.checkpoint import (CheckpointRunner,
                                        latest_checkpoint,
                                        load_checkpoint)
    from repro.router.system import RouterConfig

    config = RouterConfig(scheme=args.scheme, num_cpus=args.cpus,
                          sync_quantum=args.quantum,
                          inter_packet_delay=args.delay_us * US)
    runner = CheckpointRunner(config, checkpoint_every=args.every,
                              out_dir=args.out_dir)
    runner.run(args.sim_us * US)
    runner.close()
    latest = latest_checkpoint(args.out_dir)
    if latest is None:
        print("checkpoint save: the run was shorter than one slice "
              "(%d quanta); raise --sim-us or lower --every"
              % args.every)
        return 1
    print("saved %d checkpoint(s) under %s" % (
        len(runner._saved), args.out_dir))
    print("latest: %s (slice %d)"
          % (latest, load_checkpoint(latest)["position"]["slice"]))
    return 0


def _cmd_checkpoint_restore(args):
    from repro.cosim.checkpoint import (RecoveryPolicy,
                                        restore_checkpoint)
    from repro.errors import CheckpointError

    try:
        runner = restore_checkpoint(args.path, out_dir=args.out_dir,
                                    recovery=RecoveryPolicy())
    except CheckpointError as error:
        print("checkpoint restore failed: %s" % error)
        return 2
    print("restored %s at slice %d (now=%d fs)"
          % (args.path, runner.completed_slices,
             runner.system.kernel.now))
    if args.sim_us:
        stats = runner.run(args.sim_us * US)
        _print_recoveries(runner)
        print("generated=%d forwarded=%d (%.1f%%) received=%d"
              % (stats.generated, stats.forwarded,
                 stats.forwarded_percent, stats.received))
    runner.close()
    return 0


def _cmd_checkpoint_verify(args):
    from repro.cosim.checkpoint import verify_checkpoint
    from repro.errors import CheckpointError

    try:
        report = verify_checkpoint(args.path)
    except CheckpointError as error:
        print("checkpoint verify failed: %s" % error)
        return 2
    print("verified %s: scheme=%s slice=%d now=%dfs sections=%s"
          % (report["path"], report["scheme"], report["slice"],
             report["now"], ",".join(report["sections"])))
    return 0


def _cmd_stream(args):
    from repro.stream import build_stream_system

    system = build_stream_system(scheme=args.scheme,
                                 total_samples=args.samples,
                                 block_words=args.block,
                                 window=args.window)
    system.run(args.sim_ms * MS)
    done = system.sink.completed_at
    print("scheme=%s samples=%d block=%d window=%d" % (
        args.scheme, args.samples, args.block, args.window))
    print("filtered=%d mismatches=%d completed_at=%s" % (
        len(system.sink.received), system.sink.mismatches,
        ("%.2f ms" % (done / 1e12)) if done else "incomplete"))
    return 0 if system.sink.mismatches == 0 else 1


def _cmd_report(args):
    from repro.analysis.report import generate_report

    text = generate_report(quick=not args.full)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %s" % args.output)
    else:
        print(text)
    return 0


def _trace_schemes(scheme):
    from repro.obs.scenarios import COSIM_SCHEMES

    return COSIM_SCHEMES if scheme == "all" else (scheme,)


def _cmd_trace(args):
    from repro.obs.profile import SchemeProfile, compare_profiles
    from repro.obs.scenarios import run_traced_scenario
    from repro.obs.tracer import trace_header

    profiles = []
    for scheme in _trace_schemes(args.scheme):
        run = run_traced_scenario(scheme, sim_us=args.sim_us,
                                  seed=args.seed,
                                  sync_quantum=args.quantum)
        profiles.append(SchemeProfile.from_run(run.system.metrics,
                                               run.tracer))
        if args.format == "chrome":
            text = run.tracer.chrome_trace_json()
        elif args.format == "json":
            header = trace_header(scheme=scheme, seed=args.seed,
                                  sim_us=args.sim_us,
                                  quantum=args.quantum,
                                  version=__version__)
            text = header + "\n" + run.tracer.dump()
        else:
            text = run.tracer.timeline(limit=args.limit)
        if args.output:
            path = (args.output if len(_trace_schemes(args.scheme)) == 1
                    else "%s.%s" % (args.output, scheme))
            with open(path, "w") as handle:
                handle.write(text)
            print("wrote %s (%d events)" % (path, len(run.tracer)))
        else:
            print(text)
    print()
    print(compare_profiles(profiles))
    return 0


def _cmd_bench(args):
    import os

    from repro.obs.bench import (BenchReporter, compare_reports,
                                 load_report)
    from repro.obs.scenarios import bench_scenario

    reporter = BenchReporter(args.out_dir)
    failures = 0
    parallel = args.parallel
    if parallel == "off":
        parallel = False
    for scheme in _trace_schemes(args.scheme):
        name = "cli_%s" % scheme
        if args.quantum != 1:
            name += "_q%d" % args.quantum
        if args.dmi:
            name += "_dmi"
        overrides = {}
        if args.tier is not None:
            overrides["tier"] = args.tier
            if args.tier == "superblocks":
                name += "_sb"
            elif args.tier == "interp":
                name += "_interp"
        traced, run = bench_scenario(scheme, sim_us=args.sim_us,
                                     seed=args.seed, name=name,
                                     sync_quantum=args.quantum,
                                     parallel=parallel,
                                     workers=args.workers,
                                     dmi=args.dmi, **overrides)
        path = reporter.write(run)
        record = run.as_dict()
        print("wrote %s: wall=%.3fs timesteps=%s events=%s" % (
            path, record["wall"]["seconds"],
            record["counters"].get("timesteps"),
            record["counters"].get("trace_events")))
        if args.compare:
            baseline_path = os.path.join(args.baseline_dir,
                                         "BENCH_%s.json" % name)
            if not os.path.exists(baseline_path):
                print("  no baseline %s - skipped" % baseline_path)
                continue
            problems = compare_reports(record, load_report(baseline_path))
            if problems:
                failures += 1
                for problem in problems:
                    print("  FAIL vs %s: %s" % (baseline_path, problem))
            else:
                print("  ok vs %s" % baseline_path)
    if failures:
        return 1
    return 0 if reporter.written else 1


def _cmd_spans(args):
    import json

    from repro.obs.scenarios import run_traced_scenario
    from repro.obs.spans import (dump_spans, perfetto_spans,
                                 span_table, spans_from_tracer)

    schemes = _trace_schemes(args.scheme)
    for scheme in schemes:
        run = run_traced_scenario(scheme, sim_us=args.sim_us,
                                  seed=args.seed,
                                  sync_quantum=args.quantum)
        spans = spans_from_tracer(run.tracer)
        if args.format == "perfetto":
            text = json.dumps(perfetto_spans(spans), sort_keys=True,
                              separators=(",", ":"))
        elif args.format == "json":
            text = dump_spans(spans)
        else:
            text = span_table(spans, limit=args.limit)
        open_spans = sum(1 for span in spans if not span.closed)
        if args.output:
            path = (args.output if len(schemes) == 1
                    else "%s.%s" % (args.output, scheme))
            with open(path, "w") as handle:
                handle.write(text)
            print("wrote %s (%d spans, %d open)"
                  % (path, len(spans), open_spans))
        else:
            print(text)
            print("%s: %d spans, %d open"
                  % (scheme, len(spans), open_spans))
    return 0


def _emit_health(report, fmt):
    """Print a health report as text or JSON; returns its exit code."""
    if fmt == "json":
        print(report.to_json())
    else:
        print(report.render())
    return report.exit_code


def _cmd_health(args):
    import json
    import os

    from repro.obs.health import (HealthReport, analyze_records,
                                  analyze_recovery_log, analyze_run)
    from repro.obs.scenarios import (chaos_health_scenario,
                                     run_traced_scenario)

    if args.records:
        if not os.path.isdir(args.records):
            print("health: records directory %r does not exist; run "
                  "'repro bench --out-dir %s' first"
                  % (args.records, args.records))
            return 2
        if args.baseline_dir and not os.path.isdir(args.baseline_dir):
            print("health: baseline directory %r does not exist; pass "
                  "an existing --baseline-dir (the committed records "
                  "live in benchmarks/baselines)" % args.baseline_dir)
            return 2
        report = analyze_records(args.records,
                                 baseline_dir=args.baseline_dir)
        return _emit_health(report, args.format)
    if args.checkpoint_dir:
        if not os.path.isdir(args.checkpoint_dir):
            print("health: checkpoint directory %r does not exist; "
                  "run 'repro router --checkpoint-every N "
                  "--checkpoint-dir %s' first"
                  % (args.checkpoint_dir, args.checkpoint_dir))
            return 2
        log_path = os.path.join(args.checkpoint_dir, "recovery.json")
        log = []
        if os.path.exists(log_path):
            with open(log_path) as handle:
                log = json.load(handle)
        report = analyze_recovery_log(log)
        return _emit_health(report, args.format)
    report = HealthReport()
    if args.chaos:
        run = chaos_health_scenario(args.chaos)
        report.extend(analyze_run(run.tracer.events(),
                                  metrics=run.system.metrics,
                                  dropped=run.tracer.dropped))
        run.system.close()
    else:
        for scheme in _trace_schemes(args.scheme):
            run = run_traced_scenario(scheme, sim_us=args.sim_us,
                                      seed=args.seed,
                                      sync_quantum=args.quantum)
            report.extend(analyze_run(run.tracer.events(),
                                      metrics=run.system.metrics,
                                      dropped=run.tracer.dropped))
            run.system.close()
    return _emit_health(report, args.format)


def _cmd_metrics(args):
    from repro.obs.metrics import prometheus_text
    from repro.obs.scenarios import run_traced_scenario

    run = run_traced_scenario(args.scheme, sim_us=args.sim_us,
                              seed=args.seed, sync_quantum=args.quantum)
    sampler = run.system.telemetry
    if sampler is None:
        print("metrics: telemetry is disabled for this configuration")
        run.system.close()
        return 2
    series = sampler.series
    if args.format == "prom":
        sample = series.latest_sample()
        if sample is None:
            print("metrics: the run recorded no telemetry points")
            run.system.close()
            return 1
        text = prometheus_text(sample,
                               labels={"scheme": args.scheme,
                                       "seed": str(args.seed),
                                       "quantum": str(args.quantum)})
    elif args.format == "json":
        text = series.dump() + "\n"
    else:
        text = "\n".join(series.to_ndjson_lines()) + "\n"
    run.system.close()
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print("wrote %s (%d points, %d evicted)"
              % (args.output, len(series), series.evicted))
    else:
        print(text, end="")
    return 0


def _render_top(series, scheme, window):
    from repro.analysis.tables import render_table

    sample = series.latest_sample()
    if sample is None:
        return "%s: no telemetry points yet" % scheme
    rates = series.rates(window)
    rows = []
    for name in series.counters:
        value = sample[name]
        rate = rates.get(name, 0)
        if not value and not rate:
            continue
        rows.append([name, "%d" % value,
                     ("%.2f" % rate) if rates else "-"])
    title = ("%s  t=%dfs  timestep=%d  points=%d (evicted %d)"
             % (scheme, sample["sim_now_fs"], sample["timestep"],
                sample["points"], sample["points_evicted"]))
    return render_table(["counter", "total", "/quantum(w=%d)" % window],
                        rows, title=title)


def _cmd_top(args):
    from repro.obs.scenarios import run_traced_scenario
    from repro.obs.tracer import Tracer
    from repro.router.system import RouterConfig, build_system

    if args.once:
        run = run_traced_scenario(args.scheme, sim_us=args.sim_us,
                                  seed=args.seed,
                                  sync_quantum=args.quantum)
        sampler = run.system.telemetry
        if sampler is None:
            print("top: telemetry is disabled for this configuration")
            run.system.close()
            return 2
        print(_render_top(sampler.series, args.scheme, args.window))
        run.system.close()
        return 0
    # Live mode: the same pinned scenario, advanced in simulated-time
    # slices with a redraw between each — refresh cadence is driven by
    # simulated progress, never wall sleeps, so the view stays
    # deterministic.
    config = RouterConfig(scheme=args.scheme, seed=args.seed,
                          max_packets=2, producer_count=2,
                          inter_packet_delay=20 * US,
                          sync_quantum=args.quantum,
                          tracer=Tracer(capacity=200_000))
    system = build_system(config)
    sampler = system.telemetry
    if sampler is None:
        print("top: telemetry is disabled for this configuration")
        system.close()
        return 2
    slices = max(1, args.refresh)
    slice_us = max(1, args.sim_us // slices)
    for __ in range(slices):
        system.run(slice_us * US)
        print("\x1b[2J\x1b[H", end="")
        print(_render_top(sampler.series, args.scheme, args.window))
    system.close()
    return 0


def _cmd_fuzz(args):
    import os

    from repro.errors import CosimError
    from repro.fuzz import load_scenario, run_fuzz, run_oracles
    from repro.fuzz.corpus import corpus_paths

    if args.replay:
        if os.path.isdir(args.replay):
            paths = corpus_paths(args.replay)
            if not paths:
                print("fuzz: no scenario fixtures under %r" % args.replay)
                return 2
        elif os.path.exists(args.replay):
            paths = [args.replay]
        else:
            print("fuzz: scenario path %r does not exist" % args.replay)
            return 2
        failed = 0
        for path in paths:
            try:
                scenario = load_scenario(path)
            except CosimError as error:
                print("fuzz: %s" % error)
                return 2
            result = run_oracles(scenario,
                                 checkpoint=not args.no_checkpoint)
            if result.passed:
                print("%s: ok%s" % (scenario.name,
                                    " (chaos)" if result.chaos else ""))
            else:
                failed += 1
                print("%s: FAIL %s" % (scenario.name,
                                       "; ".join(result.failures)))
        print("replayed %d scenario(s), %d failed" % (len(paths), failed))
        return 1 if failed else 0
    summary = run_fuzz(args.seed, args.budget,
                       corpus_dir=args.corpus_dir,
                       failures_dir=args.failures_dir,
                       write_corpus=args.write_corpus,
                       minimize=not args.no_minimize,
                       checkpoint=not args.no_checkpoint,
                       log=print)
    return 1 if summary.failed else 0


def _cmd_version(args):
    print(__version__)
    return 0


def build_parser():
    """Construct the argparse parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DATE 2004 ISS-SystemC co-simulation reproduction")
    commands = parser.add_subparsers(dest="command", required=True)

    table1 = commands.add_parser("table1", help="Table 1 experiment")
    table1.add_argument("--quick", action="store_true",
                        help="short simulated times")
    table1.set_defaults(func=_cmd_table1)

    fig7 = commands.add_parser("fig7", help="Figure 7 sweep")
    fig7.add_argument("--sim-ms", type=int, default=2,
                      help="simulated ms per point")
    fig7.set_defaults(func=_cmd_fig7)

    loc = commands.add_parser("loc", help="Section 5 LoC report")
    loc.set_defaults(func=_cmd_loc)

    router = commands.add_parser("router", help="one case-study run")
    router.add_argument("--scheme", default="gdb-kernel",
                        choices=["local", "gdb-wrapper", "gdb-kernel",
                                 "driver-kernel"])
    router.add_argument("--delay-us", type=int, default=20)
    router.add_argument("--sim-ms", type=int, default=2)
    router.add_argument("--cpus", type=int, default=1)
    router.add_argument("--ports", type=int, default=4, metavar="N",
                        help="router fabric width (an NxN router; >= 2)")
    router.add_argument("--stages", default=None, metavar="N,N,...",
                        help="multi-stage fabric: comma-separated stage "
                             "widths, each equal to --ports "
                             "(docs/fuzzing.md)")
    router.add_argument("--burst", type=int, default=1,
                        help="producer burstiness (packets back-to-back "
                             "per idle; >= 1)")
    router.add_argument("--dmi", action="store_true",
                        help="enable the zero-copy DMI binding tier "
                             "(docs/dmi.md); dmi-unsafe contexts fall "
                             "back to the transactional tiers")
    router.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="checkpoint every N sync quanta (requires "
                             "--checkpoint-dir to keep the files)")
    router.add_argument("--checkpoint-dir", default=None,
                        help="directory for checkpoint_*.json and the "
                             "recovery log")
    router.add_argument("--resume-from", default=None, metavar="PATH",
                        help="resume a previous run from a checkpoint "
                             "file instead of starting fresh")
    router.set_defaults(func=_cmd_router)

    checkpoint = commands.add_parser(
        "checkpoint", help="deterministic snapshot/restore of a "
                           "router co-simulation (docs/checkpoint.md)")
    checkpoint_cmds = checkpoint.add_subparsers(dest="checkpoint_command",
                                                required=True)
    ck_save = checkpoint_cmds.add_parser(
        "save", help="run a scenario, writing checkpoints")
    ck_save.add_argument("--scheme", default="gdb-kernel",
                         choices=["gdb-wrapper", "gdb-kernel",
                                  "driver-kernel"])
    ck_save.add_argument("--sim-us", type=int, default=120,
                         help="simulated microseconds")
    ck_save.add_argument("--quantum", type=int, default=1,
                         help="sync quantum")
    ck_save.add_argument("--cpus", type=int, default=2)
    ck_save.add_argument("--delay-us", type=int, default=20)
    ck_save.add_argument("--every", type=int, default=8,
                         help="sync quanta per checkpoint slice")
    ck_save.add_argument("--out-dir", required=True,
                         help="directory for checkpoint_*.json")
    ck_save.set_defaults(func=_cmd_checkpoint_save)
    ck_restore = checkpoint_cmds.add_parser(
        "restore", help="rebuild a run from a checkpoint and continue")
    ck_restore.add_argument("path", help="checkpoint file")
    ck_restore.add_argument("--sim-us", type=int, default=0,
                            help="continue the run to this horizon "
                                 "(0: just restore and verify)")
    ck_restore.add_argument("--out-dir", default=None,
                            help="write further checkpoints here")
    ck_restore.set_defaults(func=_cmd_checkpoint_restore)
    ck_verify = checkpoint_cmds.add_parser(
        "verify", help="replay-verify a checkpoint file (exit 2 when "
                       "missing or corrupt)")
    ck_verify.add_argument("path", help="checkpoint file")
    ck_verify.set_defaults(func=_cmd_checkpoint_verify)

    stream = commands.add_parser("stream",
                                 help="the streaming DSP case study")
    stream.add_argument("--scheme", default="driver-kernel",
                        choices=["driver-kernel", "gdb-kernel"])
    stream.add_argument("--samples", type=int, default=192)
    stream.add_argument("--block", type=int, default=16)
    stream.add_argument("--window", type=int, default=4)
    stream.add_argument("--sim-ms", type=int, default=20)
    stream.set_defaults(func=_cmd_stream)

    trace = commands.add_parser(
        "trace", help="traced quickstart-scale run + scheme profile")
    trace.add_argument("--scheme", default="all",
                       choices=["all", "gdb-wrapper", "gdb-kernel",
                                "driver-kernel"])
    trace.add_argument("--sim-us", type=int, default=120,
                       help="simulated microseconds")
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--format", default="text",
                       choices=["text", "chrome", "json"],
                       help="text timeline, Chrome trace-event JSON, "
                            "or canonical JSON lines")
    trace.add_argument("--limit", type=int, default=40,
                       help="max timeline rows printed (text format)")
    trace.add_argument("--quantum", type=int, default=1,
                       help="sync quantum (batched timesteps per ISS "
                            "synchronisation)")
    trace.add_argument("-o", "--output", default=None,
                       help="write the trace to a file (per scheme)")
    trace.set_defaults(func=_cmd_trace)

    spans = commands.add_parser(
        "spans", help="causal transaction spans from a traced run")
    spans.add_argument("--scheme", default="all",
                       choices=["all", "gdb-wrapper", "gdb-kernel",
                                "driver-kernel"])
    spans.add_argument("--sim-us", type=int, default=120,
                       help="simulated microseconds")
    spans.add_argument("--seed", type=int, default=7)
    spans.add_argument("--quantum", type=int, default=1,
                       help="sync quantum (batched timesteps per ISS "
                            "synchronisation)")
    spans.add_argument("--format", default="table",
                       choices=["table", "json", "perfetto"],
                       help="plain-text table, canonical JSON lines, or "
                            "Perfetto/Chrome async-slice JSON")
    spans.add_argument("--limit", type=int, default=40,
                       help="max table rows printed (table format)")
    spans.add_argument("-o", "--output", default=None,
                       help="write the spans to a file (per scheme)")
    spans.set_defaults(func=_cmd_spans)

    health = commands.add_parser(
        "health", help="rule-based co-simulation health analysis "
                       "(exit 1 on critical findings)")
    health.add_argument("--records", default=None,
                        help="analyze a directory of BENCH_*.json "
                             "records instead of running a scenario")
    health.add_argument("--baseline-dir", default=None,
                        help="baseline records for latency-regression "
                             "checks (--records mode)")
    health.add_argument("--checkpoint-dir", default=None,
                        help="report crash-recovery events from a "
                             "checkpoint directory's recovery.json")
    health.add_argument("--chaos", default=None,
                        choices=["storm", "stall", "thrash"],
                        help="run a seeded fault scenario the analyzer "
                             "must flag (storm: retransmission storm; "
                             "stall: stalled read + watchdog "
                             "quarantine; thrash: DMI invalidation "
                             "storm)")
    health.add_argument("--scheme", default="all",
                        choices=["all", "gdb-wrapper", "gdb-kernel",
                                 "driver-kernel"])
    health.add_argument("--sim-us", type=int, default=120,
                        help="simulated microseconds (live mode)")
    health.add_argument("--seed", type=int, default=7)
    health.add_argument("--quantum", type=int, default=1,
                        help="sync quantum (live mode)")
    health.add_argument("--format", default="text",
                        choices=["text", "json"],
                        help="render the report as text or as the "
                             "machine-readable JSON document (exit "
                             "codes are identical)")
    health.set_defaults(func=_cmd_health)

    metrics = commands.add_parser(
        "metrics", help="per-quantum telemetry time-series export "
                        "(docs/observability.md)")
    metrics.add_argument("--scheme", default="gdb-kernel",
                         choices=["gdb-wrapper", "gdb-kernel",
                                  "driver-kernel"])
    metrics.add_argument("--sim-us", type=int, default=120,
                         help="simulated microseconds")
    metrics.add_argument("--seed", type=int, default=7)
    metrics.add_argument("--quantum", type=int, default=1,
                         help="sync quantum (batched timesteps per ISS "
                              "synchronisation)")
    metrics.add_argument("--format", default="ndjson",
                         choices=["ndjson", "json", "prom"],
                         help="one canonical JSON object per point, "
                              "the whole-series canonical JSON image, "
                              "or the newest point in Prometheus text "
                              "exposition format")
    metrics.add_argument("-o", "--output", default=None,
                         help="write the export to a file")
    metrics.set_defaults(func=_cmd_metrics)

    top = commands.add_parser(
        "top", help="live top-style telemetry counter view "
                    "(docs/observability.md)")
    top.add_argument("--scheme", default="gdb-kernel",
                     choices=["gdb-wrapper", "gdb-kernel",
                              "driver-kernel"])
    top.add_argument("--sim-us", type=int, default=240,
                     help="total simulated microseconds")
    top.add_argument("--seed", type=int, default=7)
    top.add_argument("--quantum", type=int, default=1,
                     help="sync quantum (batched timesteps per ISS "
                          "synchronisation)")
    top.add_argument("--window", type=int, default=8,
                     help="points in the per-quantum rate window")
    top.add_argument("--refresh", type=int, default=6,
                     help="live redraws (the run advances in this many "
                          "simulated-time slices)")
    top.add_argument("--once", action="store_true",
                     help="print one final snapshot and exit (CI smoke)")
    top.set_defaults(func=_cmd_top)

    bench = commands.add_parser(
        "bench", help="write machine-readable BENCH_*.json records")
    bench.add_argument("--scheme", default="all",
                       choices=["all", "gdb-wrapper", "gdb-kernel",
                                "driver-kernel"])
    bench.add_argument("--sim-us", type=int, default=120)
    bench.add_argument("--seed", type=int, default=7)
    bench.add_argument("--out-dir", default=None,
                       help="output directory (default: "
                            "$REPRO_BENCH_DIR or benchmarks/out)")
    bench.add_argument("--quantum", type=int, default=1,
                       help="sync quantum (batched timesteps per ISS "
                            "synchronisation; record names gain a _qN "
                            "suffix when != 1)")
    bench.add_argument("--parallel", default=None,
                       choices=["off", "thread", "process"],
                       help="parallel ISS dispatch backend (default: "
                            "$REPRO_PARALLEL or off); counters stay "
                            "identical to serial, wall gains a "
                            "'parallel' object")
    bench.add_argument("--workers", type=int, default=None,
                       help="parallel worker-pool width (default: "
                            "$REPRO_WORKERS or 2)")
    bench.add_argument("--dmi", action="store_true",
                       help="enable the zero-copy DMI binding tier "
                            "(docs/dmi.md); record names gain a _dmi "
                            "suffix")
    bench.add_argument("--tier", default=None,
                       choices=["interp", "blocks", "superblocks"],
                       help="ISS execution tier (default: $REPRO_TIER "
                            "or blocks); record names gain a _sb/"
                            "_interp suffix for the non-default tiers")
    bench.add_argument("--compare", action="store_true",
                       help="gate counters against committed baselines; "
                            "non-zero exit on regression")
    bench.add_argument("--baseline-dir", default="benchmarks/baselines",
                       help="directory holding baseline BENCH_*.json "
                            "records for --compare")
    bench.set_defaults(func=_cmd_bench)

    fuzz = commands.add_parser(
        "fuzz", help="seeded scenario fuzzing judged by the three-part "
                     "oracle (docs/fuzzing.md)")
    fuzz.add_argument("--seed", type=int, default=7,
                      help="campaign seed (same seed, same budget -> "
                           "same scenario sequence and verdicts)")
    fuzz.add_argument("--budget", type=int, default=20,
                      help="number of scenarios to sample and judge")
    fuzz.add_argument("--failures-dir", default=None,
                      help="write minimized failing scenarios here "
                           "(CI uploads these as artifacts)")
    fuzz.add_argument("--corpus-dir", default="tests/fixtures/scenarios",
                      help="scenario fixture directory (with "
                           "--write-corpus; also the --replay default "
                           "location)")
    fuzz.add_argument("--write-corpus", action="store_true",
                      help="save novel passing scenarios as fixtures "
                           "under --corpus-dir")
    fuzz.add_argument("--replay", default=None, metavar="PATH",
                      help="re-judge saved scenario fixture(s): a "
                           ".json file or a directory of them")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="skip greedy shrinking of failing scenarios")
    fuzz.add_argument("--no-checkpoint", action="store_true",
                      help="skip the checkpoint round-trip oracle "
                           "(faster smoke runs)")
    fuzz.set_defaults(func=_cmd_fuzz)

    report = commands.add_parser(
        "report", help="run every experiment, render a markdown report")
    report.add_argument("--full", action="store_true",
                        help="full-length runs (minutes)")
    report.add_argument("-o", "--output", default=None,
                        help="write to a file instead of stdout")
    report.set_defaults(func=_cmd_report)

    version = commands.add_parser("version", help="print the version")
    version.set_defaults(func=_cmd_version)
    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)
