"""Assembling and packaging the guest applications."""

from dataclasses import dataclass

from repro.apps.sources import driver_app_source, gdb_app_source
from repro.cosim.pragmas import PragmaMap, build_pragma_map
from repro.iss.assembler import Program, assemble


@dataclass
class AppImage:
    """An assembled guest application ready to load."""

    program: Program
    pragma_map: PragmaMap  # empty map for the driver app
    entry: int
    source: str

    @property
    def symbols(self):
        return self.program.symbols


def build_gdb_app(origin=0x1000, algorithm="sum"):
    """Assemble the bare-metal app and run the pragma filter over it."""
    source = gdb_app_source(origin, algorithm)
    program = assemble(source)
    return AppImage(program, build_pragma_map(program), program.entry,
                    source)


def build_driver_app(origin=0x1000, algorithm="sum"):
    """Assemble the RTOS/driver app (no pragmas: no breakpoints)."""
    source = driver_app_source(origin, algorithm)
    program = assemble(source)
    return AppImage(program, PragmaMap([]), program.entry, source)
