"""Assembling and packaging the guest applications."""

from dataclasses import dataclass

from repro.apps.sources import (driver_app_source, gdb_app_source,
                                gdb_blocked_app_source)
from repro.cosim.pragmas import PragmaMap, build_pragma_map
from repro.iss.assembler import Program, assemble


@dataclass
class AppImage:
    """An assembled guest application ready to load."""

    program: Program
    pragma_map: PragmaMap  # empty map for the driver app
    entry: int
    source: str

    @property
    def symbols(self):
        return self.program.symbols


def build_gdb_app(origin=0x1000, algorithm="sum", rounds=1, blocked=False):
    """Assemble the bare-metal app and run the pragma filter over it.

    ``blocked=True`` selects the bulk-transfer variant whose packet
    words arrive through one stacked-pragma breakpoint (one RSP block
    exchange per packet instead of one stop per word).
    """
    source_fn = gdb_blocked_app_source if blocked else gdb_app_source
    source = source_fn(origin, algorithm, rounds)
    program = assemble(source)
    return AppImage(program, build_pragma_map(program), program.entry,
                    source)


def build_driver_app(origin=0x1000, algorithm="sum", rounds=1):
    """Assemble the RTOS/driver app (no pragmas: no breakpoints)."""
    source = driver_app_source(origin, algorithm, rounds)
    program = assemble(source)
    return AppImage(program, PragmaMap([]), program.entry, source)
