"""Guest applications (software side of the case study).

Both applications implement the same job — compute the checksum of
router packets — against the two programming models the paper
contrasts:

- :func:`gdb_app_source` — the bare-metal application of the GDB
  schemes: ordinary variables + pragmas mark the communication points;
  no operating system ("hardware interaction is managed by the
  application itself", Section 5.1);
- :func:`driver_app_source` — the RTOS application of the
  Driver-Kernel scheme: device driver API calls (open / ioctl / read /
  write traps) and an interrupt service routine.

The checksum inner loop is textually identical in both, so every
measured difference comes from the co-simulation scheme and the OS.
"""

from repro.apps.sources import (checksum_routine, gdb_app_source,
                                gdb_blocked_app_source, driver_app_source,
                                CHECKSUM_DEVICE_ID, DATA_SEMAPHORE_ID)
from repro.apps.build import (build_gdb_app, build_driver_app, AppImage)

__all__ = [
    "checksum_routine", "gdb_app_source", "gdb_blocked_app_source",
    "driver_app_source", "CHECKSUM_DEVICE_ID", "DATA_SEMAPHORE_ID",
    "build_gdb_app", "build_driver_app", "AppImage",
]
