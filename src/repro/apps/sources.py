"""R32 assembly sources of the guest checksum applications."""

CHECKSUM_DEVICE_ID = 1
DATA_SEMAPHORE_ID = 1


def _packet_words():
    # Imported lazily: repro.router's package __init__ imports the
    # system builder, which imports this module (circular otherwise).
    from repro.router.packet import PACKET_WORDS

    return PACKET_WORDS


_SUM_ROUTINE = """
; --- shared checksum routine (complemented word sum) --------------
checksum_words:
        li   r2, 0              ; running sum
        li   r3, 0              ; constant zero
chk_loop:
        beq  r1, r3, chk_done
        lw   r5, [r0]
        add  r2, r2, r5
        addi r0, r0, 4
        addi r1, r1, -1
        b    chk_loop
chk_done:
        not  r0, r2
        ret
"""

_CRC32_ROUTINE = """
; --- shared checksum routine (reflected CRC-32, bitwise) -----------
checksum_words:
        shli r1, r1, 2          ; words -> bytes
        li32 r2, 0xFFFFFFFF     ; crc
        li   r3, 0              ; constant zero
chk_loop:
        beq  r1, r3, chk_done
        lbu  r5, [r0]
        xor  r2, r2, r5
        li   r6, 8
crc_bit_loop:
        andi r7, r2, 1
        shri r2, r2, 1
        beq  r7, r3, crc_skip
        li32 r8, 0xEDB88320
        xor  r2, r2, r8
crc_skip:
        addi r6, r6, -1
        bne  r6, r3, crc_bit_loop
        addi r0, r0, 1
        addi r1, r1, -1
        b    chk_loop
chk_done:
        not  r0, r2             ; final xor with all-ones
        ret
"""

_ROUTINES = {"sum": _SUM_ROUTINE, "crc32": _CRC32_ROUTINE}


def checksum_routine(algorithm="sum"):
    """The shared checksum subroutine for *algorithm*.

    ABI: r0 = buffer address, r1 = word count; returns the checksum in
    r0 — matching :func:`repro.router.checksum.reference_checksum` for
    the same algorithm.  Clobbers r2/r3/r5/r6/r7/r8.
    """
    try:
        return _ROUTINES[algorithm]
    except KeyError:
        raise ValueError("unknown checksum algorithm %r" % (algorithm,))


def _rounds_prologue(rounds, save_reg):
    """Set up the checksum-repeat counter (empty at the default 1).

    ``rounds`` > 1 makes the guest recompute the checksum that many
    times per packet — a compute-heavier variant of the same workload
    used by the parallel-speedup benchmarks, where guest execution has
    to dominate the synchronisation traffic.  At the default of 1 no
    instructions are emitted, so existing images (and the golden
    traces keyed to their code addresses) are unchanged.  *save_reg*
    holds the routine input the loop must restore between iterations
    (the checksum routine clobbers it); r11/r12/r15 are free in both
    applications.
    """
    if rounds <= 1:
        return ""
    return ("        li   r15, 0             ; constant zero\n"
            "        li32 r11, %d            ; checksum rounds\n"
            "        mov  r12, %s            ; saved routine input\n"
            "chk_rounds:\n" % (rounds, save_reg))


def _rounds_epilogue(rounds, save_reg):
    """Loop back over the checksum call while rounds remain.

    Restores *save_reg* only on the looping path, so the final
    iteration leaves the checksum result (which may live in the same
    register) intact for the publish that follows.
    """
    if rounds <= 1:
        return ""
    return ("        addi r11, r11, -1\n"
            "        beq  r11, r15, chk_rounds_done\n"
            "        mov  %s, r12\n"
            "        b    chk_rounds\n"
            "chk_rounds_done:\n" % save_reg)


def _gdb_word_reads():
    """The unrolled per-word synchronised reads of the bare-metal app.

    Each packet word is a guest variable with an ``iss_out`` pragma;
    the breakpoint on the load stops the ISS until the kernel has
    copied fresh data into the variable (the load itself then observes
    the new value).
    """
    lines = []
    for index in range(_packet_words()):
        variable = "pkt_w%d" % index
        lines.append("        la   r10, %s" % variable)
        lines.append("        ;#pragma iss_out %s" % variable)
        lines.append("        lw   r5, [r10]")
    return "\n".join(lines)


def gdb_app_source(origin=0x1000, algorithm="sum", rounds=1):
    """Bare-metal checksum application (GDB-Wrapper / GDB-Kernel)."""
    return """
; checksum offload application - bare metal (GDB schemes)
        .entry main
        .org 0x%x
main:
        li   r9, 0              ; packets processed (debug counter)
loop:
        ; Synchronising read: blocks (ISS held at the breakpoint)
        ; until the router posts a new packet.
        la   r10, pkt_len
        ;#pragma iss_out pkt_len
        lw   r8, [r10]
%s
        ; checksum over the packet-word variables (consecutive words)
%s        la   r0, pkt_w0
        mov  r1, r8
        call checksum_words
%s        ; Publish the result: the kernel collects the variable at the
        ; breakpoint on the line after the store.
        la   r10, chk_result
        ;#pragma iss_in chk_result
        sw   r0, [r10]
        addi r9, r9, 1
        b    loop
%s
; --- communication variables -------------------------------------
pkt_len:    .word 0
%s
chk_result: .word 0
""" % (origin, _gdb_word_reads(),
       _rounds_prologue(rounds, "r8"), _rounds_epilogue(rounds, "r8"),
       checksum_routine(algorithm),
       "\n".join("pkt_w%d:     .word 0" % i
                 for i in range(_packet_words())))


def gdb_blocked_app_source(origin=0x1000, algorithm="sum", rounds=1):
    """Bare-metal checksum app with one *blocked* synchronising read.

    Stacks the ``iss_out`` pragmas of the packet length and of every
    packet word onto the single ``pkt_len`` load: all eight guest
    variables are contiguous words, so the kernel services the one
    breakpoint with a single RSP ``M`` block exchange (the bulk
    transfers of ``docs/parallel.md``) instead of stopping once per
    word.  The per-word loads of :func:`gdb_app_source` exist purely
    as synchronisation points, so the blocked variant simply drops
    them — the checksum routine reads the packet from memory either
    way.
    """
    stacked = "\n".join(
        "        ;#pragma iss_out %s" % variable
        for variable in ["pkt_len"] + ["pkt_w%d" % index
                                       for index in range(_packet_words())])
    return """
; checksum offload application - bare metal, blocked transfers
        .entry main
        .org 0x%x
main:
        li   r9, 0              ; packets processed (debug counter)
loop:
        ; Blocked synchronising read: one breakpoint carries the
        ; bindings of the length word AND every packet word; the
        ; kernel writes the whole contiguous run in one M exchange
        ; before the load retires.
        la   r10, pkt_len
%s
        lw   r8, [r10]
        ; checksum over the packet-word variables (consecutive words)
%s        la   r0, pkt_w0
        mov  r1, r8
        call checksum_words
%s        ; Publish the result: the kernel collects the variable at the
        ; breakpoint on the line after the store.
        la   r10, chk_result
        ;#pragma iss_in chk_result
        sw   r0, [r10]
        addi r9, r9, 1
        b    loop
%s
; --- communication variables (one contiguous run) ------------------
pkt_len:    .word 0
%s
chk_result: .word 0
""" % (origin, stacked,
       _rounds_prologue(rounds, "r8"), _rounds_epilogue(rounds, "r8"),
       checksum_routine(algorithm),
       "\n".join("pkt_w%d:     .word 0" % i
                 for i in range(_packet_words())))


def driver_app_source(origin=0x1000, algorithm="sum", rounds=1):
    """RTOS checksum application (Driver-Kernel scheme).

    Uses the driver API of :mod:`repro.rtos.driver` through SYS traps
    and registers a guest ISR that releases the data semaphore.
    """
    return """
; checksum offload application - RTOS + device driver (Driver-Kernel)
        .entry main
        .org 0x%x
        .equ DEV_CHK, %d
        .equ SEM_DATA, %d
        .equ IOCTL_REGISTER_ISR, 1
        .equ SYS_SEM_WAIT, 18
        .equ SYS_SEM_POST, 19
        .equ SYS_DEV_OPEN, 32
        .equ SYS_DEV_READ, 33
        .equ SYS_DEV_WRITE, 34
        .equ SYS_DEV_IOCTL, 35
        .equ SYS_IRET, 48
main:
        ; open the SystemC checksum device
        li   r0, DEV_CHK
        sys  SYS_DEV_OPEN
        mov  r4, r0             ; device handle
        ; register the interrupt service routine with the driver
        mov  r0, r4
        li   r1, IOCTL_REGISTER_ISR
        la   r2, isr
        sys  SYS_DEV_IOCTL
loop:
        ; wait for the ISR to signal that the device has data
        li   r0, SEM_DATA
        sys  SYS_SEM_WAIT
        ; read the packet from the device (blocks for the READ reply)
        mov  r0, r4
        la   r1, buf
        li   r2, %d
        sys  SYS_DEV_READ
%s        mov  r1, r0             ; word count actually read
        la   r0, buf
        call checksum_words
%s        la   r10, result_buf
        sw   r0, [r10]
        ; write the result back to the device
        mov  r0, r4
        la   r1, result_buf
        li   r2, 1
        sys  SYS_DEV_WRITE
        b    loop

; --- interrupt service routine -----------------------------------
isr:
        li   r0, SEM_DATA
        sys  SYS_SEM_POST
        sys  SYS_IRET
%s
; --- buffers -------------------------------------------------------
buf:        .space %d
result_buf: .word 0
""" % (origin, CHECKSUM_DEVICE_ID, DATA_SEMAPHORE_ID, _packet_words(),
       _rounds_prologue(rounds, "r0"), _rounds_epilogue(rounds, "r0"),
       checksum_routine(algorithm), 4 * (_packet_words() + 1))
