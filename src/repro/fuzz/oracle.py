"""The three-part scenario oracle.

A scenario passes when every invariant the platform promises holds:

1. **Health** — the rule-based analyzer (:mod:`repro.obs.health`)
   finds no critical condition on a fault-free run.  Fault-injected
   scenarios are *chaos*: quarantines, storms and stalls are then the
   expected product of the injected faults, so criticals are recorded
   as observations instead of failures — what must still hold is 2.
2. **Serial/parallel byte-identity** — the serial run and the
   thread-dispatched parallel run produce identical traces, metrics
   and stats; a run that dies must die identically (same exception,
   same trace prefix) on both backends.
3. **Checkpoint round-trip** — a checkpointed run of the same config
   saves a snapshot that restores with replay verification
   (:func:`repro.cosim.checkpoint.restore_checkpoint` raises on any
   divergent section).

Every run is seeded and simulated-time driven, so a failing oracle is
a reproducible counterexample, not flake.
"""

import shutil
import tempfile
from dataclasses import dataclass, field

from repro.errors import CheckpointError
from repro.obs.health import analyze_run
from repro.obs.scenarios import run_traced_scenario
from repro.obs.tracer import dump_events
from repro.sysc.simtime import US

ORACLES = ("health", "byte-identity", "checkpoint")


@dataclass
class OracleResult:
    """The verdict of one scenario's oracle pass."""

    scenario: object
    passed: bool
    failures: list = field(default_factory=list)   # "oracle: detail"
    chaos: bool = False        # fault-injected: health criticals expected
    observations: list = field(default_factory=list)

    def failed_oracles(self):
        """The oracle names that failed (the minimizer's target set)."""
        return sorted({failure.split(":", 1)[0]
                       for failure in self.failures})


def _run_outcome(scenario, parallel):
    """One traced run: (trace, metrics, stats) or a deterministic
    exception signature."""
    config = scenario.config
    try:
        run = run_traced_scenario(
            config.scheme, sim_us=scenario.sim_us, seed=config.seed,
            max_packets=config.max_packets,
            producer_count=config.producer_count or config.num_ports,
            inter_packet_delay_us=config.inter_packet_delay // US,
            reliability=config.reliability, fault_plan=config.fault_plan,
            watchdog_ticks=config.watchdog_ticks,
            sync_quantum=config.sync_quantum, num_cpus=config.num_cpus,
            parallel=parallel, workers=config.workers,
            num_ports=config.num_ports, stages=config.stages,
            traffic=config.traffic, burst=config.burst,
            algorithm=config.algorithm,
            checksum_rounds=config.checksum_rounds,
            input_capacity=config.input_capacity,
            output_capacity=config.output_capacity,
            num_addresses=config.num_addresses)
    except Exception as error:
        return {"error": "%s: %s" % (type(error).__name__, error)}
    outcome = {
        "trace": dump_events(run.tracer.events()),
        "metrics": run.system.metrics.as_dict(),
        "stats": (run.stats.generated, run.stats.forwarded,
                  run.stats.received, run.stats.corrupt,
                  run.stats.input_drops, run.stats.output_drops),
        "events": run.tracer.events(),
        "system_metrics": run.system.metrics,
        "dropped": run.tracer.dropped,
    }
    run.system.close()
    return outcome


def _comparable(outcome):
    if "error" in outcome:
        return {"error": outcome["error"]}
    return {"trace": outcome["trace"], "metrics": outcome["metrics"],
            "stats": outcome["stats"]}


def _check_checkpoint(scenario, tmp_dir):
    """Run the config in checkpointed slices, restore, replay-verify.

    Checkpoints land at full-slice boundaries (never after the final
    banked-budget flush — a post-flush state is not a boundary any
    replay can reach), exactly like a production checkpointed run.
    """
    from repro.cosim.checkpoint import (CheckpointRunner,
                                        latest_checkpoint,
                                        restore_checkpoint)

    runner = CheckpointRunner(scenario.config, checkpoint_every=4,
                              out_dir=tmp_dir)
    try:
        runner.run(scenario.sim_us * US)
    finally:
        runner.close()
    path = latest_checkpoint(tmp_dir)
    if path is None:    # horizon shorter than one slice: nothing saved
        return
    restored = restore_checkpoint(path)
    restored.close()


def run_oracles(scenario, checkpoint=True):
    """Judge one scenario with all three oracles.

    Returns an :class:`OracleResult`; never raises for a *failing*
    scenario (failures are data), only for oracle-machinery bugs.
    """
    chaos = scenario.config.fault_plan is not None
    result = OracleResult(scenario=scenario, passed=True, chaos=chaos)

    serial = _run_outcome(scenario, parallel=False)
    parallel = _run_outcome(scenario, parallel="thread")

    # Oracle 2: byte-identity (including identical deterministic death).
    if _comparable(serial) != _comparable(parallel):
        detail = "serial and parallel runs diverge"
        if "error" in serial or "error" in parallel:
            detail += " (serial=%s, parallel=%s)" % (
                serial.get("error", "completed"),
                parallel.get("error", "completed"))
        result.failures.append("byte-identity: %s" % detail)

    # Oracle 1: health analysis of the serial run.
    if "error" in serial:
        if not chaos:
            result.failures.append(
                "health: fault-free run died: %s" % serial["error"])
        else:
            result.observations.append(
                "chaos run died deterministically: %s" % serial["error"])
    else:
        report = analyze_run(serial["events"],
                             metrics=serial["system_metrics"],
                             dropped=serial["dropped"])
        criticals = report.by_severity("critical")
        for finding in criticals:
            line = "%s %s: %s" % (finding.rule, finding.subject,
                                  finding.message)
            if chaos:
                result.observations.append("expected-chaos " + line)
            else:
                result.failures.append("health: " + line)

    # Oracle 3: checkpoint save/restore/verify round-trip.  Only a run
    # that completes can be checkpointed; a chaos config that dies is
    # covered by the identical-death check above.
    if checkpoint and "error" not in serial:
        tmp_dir = tempfile.mkdtemp(prefix="repro-fuzz-ckpt-")
        try:
            _check_checkpoint(scenario, tmp_dir)
        except CheckpointError as error:
            result.failures.append("checkpoint: %s" % error)
        finally:
            shutil.rmtree(tmp_dir, ignore_errors=True)

    result.passed = not result.failures
    return result
