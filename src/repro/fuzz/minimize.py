"""Greedy shrinking of failing scenarios.

A failing scenario is only useful as a fixture if a human can read it,
so the minimizer walks an ordered list of config reductions — drop the
fault plan, flatten the fabric, default the traffic, shrink widths and
horizons — and keeps each reduction iff the *same set of oracles*
still fails.  The loop repeats until a full pass keeps the scenario
unchanged (a fixpoint), so later reductions get retried after earlier
ones unlock them.

Every candidate is revalidated and re-judged with the real oracles, so
the minimized scenario is itself a replayable counterexample.
"""

from dataclasses import replace

from repro.router.system import validate_config

#: Ordered (name, transform) reductions, most-simplifying first.  Each
#: transform maps a config to a dict of field overrides (or None when
#: it does not apply).
_REDUCTIONS = (
    ("drop-faults", lambda c: {"fault_plan": None, "reliability": None,
                               "watchdog_ticks": None}
     if c.fault_plan is not None or c.reliability is not None else None),
    ("drop-watchdog", lambda c: {"watchdog_ticks": None}
     if c.watchdog_ticks is not None else None),
    ("flatten-stages", lambda c: {"stages": None}
     if c.stages is not None else None),
    ("default-traffic", lambda c: {"traffic": None}
     if c.traffic is not None else None),
    ("burst-1", lambda c: {"burst": 1} if c.burst > 1 else None),
    ("one-cpu", lambda c: {"num_cpus": 1} if c.num_cpus > 1 else None),
    ("lock-step", lambda c: {"sync_quantum": 1}
     if c.sync_quantum > 1 else None),
    ("blocks-tier", lambda c: {"tier": "blocks"}
     if c.tier != "blocks" else None),
    ("two-ports", lambda c: {"num_ports": 2,
                             "stages": ([2] * len(c.stages)
                                        if c.stages else None),
                             "producer_count": (min(c.producer_count, 2)
                                                if c.producer_count
                                                else None)}
     if c.num_ports > 2 else None),
    ("two-producers", lambda c: {"producer_count": 2}
     if (c.producer_count or c.num_ports) > 2 else None),
    ("two-workers", lambda c: {"workers": 2} if c.workers > 2 else None),
    ("sum-checksum", lambda c: {"algorithm": "sum"}
     if c.algorithm != "sum" else None),
    ("one-round", lambda c: {"checksum_rounds": 1}
     if c.checksum_rounds > 1 else None),
    ("one-packet", lambda c: {"max_packets": 1}
     if c.max_packets is None or c.max_packets > 1 else None),
)


def _shrink_sim_us(scenario):
    """The next shorter horizon to try, or None."""
    for horizon in (40, 60, 80):
        if scenario.sim_us > horizon:
            return horizon
    return None


def minimize_scenario(scenario, judge, log=None):
    """Shrink *scenario* while *judge* keeps failing the same oracles.

    *judge* is ``scenario -> OracleResult`` (normally
    :func:`~repro.fuzz.oracle.run_oracles`).  Returns
    ``(minimized_scenario, final_result, steps)`` where *steps* names
    the reductions that stuck.  The input scenario must already fail.
    """
    result = judge(scenario)
    if result.passed:
        raise ValueError("minimize_scenario needs a failing scenario")
    target = result.failed_oracles()
    steps = []

    def attempt(candidate, step):
        nonlocal scenario, result
        try:
            validate_config(candidate.config)
        except Exception:
            return False
        verdict = judge(candidate)
        if verdict.passed or verdict.failed_oracles() != target:
            return False
        scenario, result = candidate, verdict
        steps.append(step)
        if log is not None:
            log("  minimize: kept %s" % step)
        return True

    changed = True
    while changed:
        changed = False
        for step, transform in _REDUCTIONS:
            overrides = transform(scenario.config)
            if not overrides:
                continue
            candidate = replace(
                scenario, config=replace(scenario.config, **overrides))
            if attempt(candidate, step):
                changed = True
        horizon = _shrink_sim_us(scenario)
        if horizon is not None and attempt(
                replace(scenario, sim_us=horizon),
                "sim-%dus" % horizon):
            changed = True
    return scenario, result, steps
