"""Seeded scenario fuzzing with the health analyzer as oracle.

The package turns the deterministic invariants the earlier layers
established into a bug-finding engine (docs/fuzzing.md):

- :mod:`repro.fuzz.space` — a seeded scenario space composing
  topology x traffic model x fault plan x scheme x sync quantum x
  parallelism into serializable :class:`~repro.fuzz.corpus.Scenario`
  configs;
- :mod:`repro.fuzz.oracle` — the three-part pass/fail oracle: health
  analyzer findings, serial-vs-parallel trace/metrics byte-identity,
  and the checkpoint save/restore/verify round-trip;
- :mod:`repro.fuzz.minimize` — greedy config shrinking of failing
  scenarios;
- :mod:`repro.fuzz.corpus` — JSON scenario fixtures under
  ``tests/fixtures/scenarios/`` and their replay helpers;
- :mod:`repro.fuzz.engine` — the ``repro fuzz`` loop tying it all
  together.
"""

from repro.fuzz.corpus import (SCENARIO_SCHEMA, Scenario, load_scenario,
                               scenario_from_dict, scenario_to_dict,
                               write_scenario)
from repro.fuzz.engine import FuzzSummary, run_fuzz
from repro.fuzz.minimize import minimize_scenario
from repro.fuzz.oracle import OracleResult, run_oracles
from repro.fuzz.space import ScenarioSpace

__all__ = [
    "SCENARIO_SCHEMA", "Scenario", "ScenarioSpace", "OracleResult",
    "FuzzSummary", "load_scenario", "minimize_scenario", "run_fuzz",
    "run_oracles", "scenario_from_dict", "scenario_to_dict",
    "write_scenario",
]
