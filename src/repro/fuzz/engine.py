"""The seeded fuzz loop behind ``repro fuzz``.

One run is a pure function of ``(seed, budget)``: the scenario
sequence, every verdict, and the corpus/failure files written are all
reproducible — re-running a seed re-derives the same campaign, which
is what the CI smoke leg and the determinism tests assert.

Novelty is tracked by :meth:`~repro.fuzz.corpus.Scenario.signature`
(scheme x width x depth x traffic kind x faults x quantum x MPSoC
width x dmi x dispatch tier): the first passing scenario of each
signature is corpus-worthy;
failing scenarios are minimized and written unconditionally.
"""

import os
import random
from dataclasses import dataclass, field

from repro.fuzz.corpus import write_scenario
from repro.fuzz.minimize import minimize_scenario
from repro.fuzz.oracle import run_oracles
from repro.fuzz.space import ScenarioSpace


@dataclass
class FuzzSummary:
    """What one fuzz campaign did."""

    seed: int
    budget: int
    scenarios: list = field(default_factory=list)   # sampled names
    passed: int = 0
    chaos: int = 0              # passing fault-injected scenarios
    novel: list = field(default_factory=list)       # corpus-worthy names
    failures: list = field(default_factory=list)    # failure dicts
    corpus_files: list = field(default_factory=list)
    failure_files: list = field(default_factory=list)

    @property
    def failed(self):
        return len(self.failures)

    def as_dict(self):
        """The campaign summary as plain JSON types."""
        return {
            "seed": self.seed,
            "budget": self.budget,
            "scenarios": list(self.scenarios),
            "passed": self.passed,
            "failed": self.failed,
            "chaos": self.chaos,
            "novel": list(self.novel),
            "failures": [dict(failure) for failure in self.failures],
            "corpus_files": list(self.corpus_files),
            "failure_files": list(self.failure_files),
        }


def run_fuzz(seed, budget, corpus_dir=None, failures_dir=None,
             write_corpus=False, minimize=True, checkpoint=True,
             space=None, log=None):
    """Run one seeded fuzz campaign of *budget* scenarios.

    Passing scenarios with a not-yet-seen coverage signature are
    written to *corpus_dir* when *write_corpus* is set; failing
    scenarios are greedily minimized (unless *minimize* is off) and
    written to *failures_dir* when given.  Returns a
    :class:`FuzzSummary`.
    """
    say = log or (lambda message: None)
    space = space or ScenarioSpace()
    rng = random.Random("fuzz:%r" % (seed,))
    seen = set()
    summary = FuzzSummary(seed=seed, budget=budget)

    def judge(scenario):
        return run_oracles(scenario, checkpoint=checkpoint)

    for index in range(budget):
        scenario = space.sample(rng, index)
        summary.scenarios.append(scenario.name)
        result = judge(scenario)
        signature = scenario.signature()
        novel = signature not in seen
        seen.add(signature)
        if result.passed:
            summary.passed += 1
            if result.chaos:
                summary.chaos += 1
            tag = "ok" + (" chaos" if result.chaos else "")
            if novel:
                summary.novel.append(scenario.name)
                tag += " novel"
                if write_corpus and corpus_dir:
                    path = write_scenario(
                        os.path.join(corpus_dir,
                                     scenario.name + ".json"),
                        scenario)
                    summary.corpus_files.append(path)
                    tag += " -> corpus"
            say("[%3d/%d] %-40s %s" % (index + 1, budget,
                                       scenario.name, tag))
            continue
        say("[%3d/%d] %-40s FAIL %s" % (index + 1, budget, scenario.name,
                                        ", ".join(result.failures)))
        minimized, final, steps = scenario, result, []
        if minimize:
            minimized, final, steps = minimize_scenario(
                scenario, judge, log=say)
        failure = {
            "name": scenario.name,
            "oracles": final.failed_oracles(),
            "failures": list(final.failures),
            "minimize_steps": steps,
        }
        if failures_dir:
            path = write_scenario(
                os.path.join(failures_dir,
                             "min_" + scenario.name + ".json"),
                minimized)
            summary.failure_files.append(path)
            failure["file"] = path
        summary.failures.append(failure)
    say("fuzz: %d/%d passed (%d chaos), %d failed, %d novel signatures"
        % (summary.passed, budget, summary.chaos, summary.failed,
           len(summary.novel)))
    return summary
