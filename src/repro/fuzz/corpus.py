"""Scenario fixtures: serializable scenarios and the corpus on disk.

A scenario is a named, fully serializable co-simulation configuration
plus its simulated horizon — everything the three oracles need to
re-run it bit-for-bit in a fresh process.  The corpus under
``tests/fixtures/scenarios/`` holds discovered-interesting scenarios
as ``repro-scenario/1`` JSON files; ``tests/fuzz/test_corpus.py``
replays every one of them as an ordinary pytest case.
"""

import json
import os
from dataclasses import dataclass

from repro.errors import CosimError
from repro.router.system import (RouterConfig, config_from_dict,
                                 config_to_dict, validate_config)

SCENARIO_SCHEMA = "repro-scenario/1"


@dataclass
class Scenario:
    """One named, replayable co-simulation scenario."""

    name: str
    sim_us: int
    config: RouterConfig

    def signature(self):
        """The coverage signature novelty tracking groups by."""
        config = self.config
        traffic = config.traffic or {}
        return (
            config.scheme,
            config.num_ports,
            len(config.stages) if config.stages else 1,
            traffic.get("kind", "bursty" if config.burst > 1
                        else "uniform"),
            config.fault_plan is not None,
            config.sync_quantum,
            config.num_cpus,
            config.dmi,
            config.tier,
        )


def scenario_to_dict(scenario):
    """The scenario as a plain-JSON ``repro-scenario/1`` record."""
    return {
        "schema": SCENARIO_SCHEMA,
        "name": scenario.name,
        "sim_us": scenario.sim_us,
        "config": config_to_dict(scenario.config),
    }


def scenario_from_dict(data):
    """Rebuild (and validate) a scenario from its JSON record."""
    if not isinstance(data, dict) or data.get("schema") != SCENARIO_SCHEMA:
        raise CosimError("not a %s record (schema=%r)"
                         % (SCENARIO_SCHEMA,
                            data.get("schema") if isinstance(data, dict)
                            else None))
    for key in ("name", "sim_us", "config"):
        if key not in data:
            raise CosimError("scenario record is missing %r" % key)
    config = config_from_dict(data["config"])
    # Fixtures always replay serial-vs-parallel explicitly; never let
    # the ambient REPRO_PARALLEL sweep leak into a stored scenario.
    if "parallel" not in data["config"]:
        config.parallel = None
    # Same shield for the dispatch tier: a fixture that predates the
    # tier axis replays on the default block tier, not REPRO_TIER.
    if "tier" not in data["config"]:
        config.tier = "blocks"
    validate_config(config)
    return Scenario(name=data["name"], sim_us=int(data["sim_us"]),
                    config=config)


def write_scenario(path, scenario):
    """Write a scenario fixture (stable formatting, trailing newline)."""
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as handle:
        json.dump(scenario_to_dict(scenario), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return path


def load_scenario(path):
    """Load one scenario fixture; :class:`CosimError` on bad files."""
    if not os.path.exists(path):
        raise CosimError("scenario file %r does not exist" % path)
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as error:
        raise CosimError("scenario %r is unreadable or not JSON: %s"
                         % (path, error))
    return scenario_from_dict(data)


def corpus_paths(directory):
    """The scenario fixture files of *directory*, sorted by name."""
    if not os.path.isdir(directory):
        return []
    return [os.path.join(directory, name)
            for name in sorted(os.listdir(directory))
            if name.endswith(".json")]
