"""The seeded scenario space the fuzzer samples from.

A :class:`ScenarioSpace` composes the orthogonal axes the platform
exposes — topology (NxN width, fabric depth), traffic model, fault
plan, co-simulation scheme, sync quantum, MPSoC width — into one
serializable :class:`~repro.fuzz.corpus.Scenario` per draw.  Sampling
is a pure function of the RNG handed in, so a fuzz run's scenario
sequence is a function of its seed alone, and every sampled config
passes :func:`~repro.router.system.validate_config` by construction.

Scenario sizes are deliberately small (a handful of packets over tens
of simulated microseconds): each scenario runs serial *and* parallel
*and* checkpointed, so the budget buys breadth, not depth.
"""

from repro.cosim.faults import FaultPlan
from repro.fuzz.corpus import Scenario
from repro.obs.scenarios import COSIM_SCHEMES
from repro.router.system import RouterConfig, validate_config
from repro.sysc.simtime import US


class ScenarioSpace:
    """Deterministic sampler over the composed scenario axes."""

    #: NxN widths the topology axis draws from (4 is the paper's).
    PORTS = (2, 3, 4, 5)
    #: Sync quanta: lock-step, and the batched windows docs/performance.md
    #: benchmarks.
    QUANTA = (1, 4, 8)

    def __init__(self, schemes=COSIM_SCHEMES):
        self.schemes = tuple(schemes)

    # -- per-axis draws ----------------------------------------------------

    def _draw_topology(self, rng):
        num_ports = rng.choice(self.PORTS)
        if rng.random() < 0.6:
            return num_ports, None
        depth = rng.choice((2, 3))
        return num_ports, [num_ports] * depth

    def _draw_traffic(self, rng):
        kind = rng.choice(("legacy", "uniform", "bursty", "onoff",
                           "trace"))
        if kind == "legacy":
            return None, rng.choice((1, 2, 3))
        if kind == "uniform":
            return {"kind": "uniform"}, 1
        if kind == "bursty":
            return {"kind": "bursty", "burst": rng.choice((2, 3, 4))}, 1
        if kind == "onoff":
            return {"kind": "onoff",
                    "on_mean": rng.choice((2, 3, 4)),
                    "off_mean": rng.choice((1, 2, 4))}, 1
        gaps = [rng.choice((10, 20, 30, 40)) * US
                for __ in range(rng.choice((2, 3, 4)))]
        return {"kind": "trace", "gaps": gaps}, 1

    def _draw_faults(self, rng):
        """(fault_plan, reliability, watchdog_ticks): mostly clean runs.

        Injected plans always ride on the reliable transport, so the
        expected steady state is recovery, not corruption; the oracle
        still demands serial/parallel identity and a clean checkpoint
        round-trip for these chaos scenarios.
        """
        if rng.random() < 0.7:
            return None, None, None
        start = rng.choice((6, 8, 12))
        step = rng.choice((3, 5, 7))
        plan = FaultPlan(script={index: "drop"
                                 for index in range(start, 160, step)},
                         delay_polls=2)
        watchdog = rng.choice((None, 400))
        return plan, True, watchdog

    def _draw_dmi(self, rng, fault_plan):
        """DMI binding-tier axis (docs/dmi.md): clean runs opt in.

        Faulty scenarios never draw it — attach would silently fall
        back to the transactional tier (the dmi-safe contract), so the
        axis would add nothing but a misleading name suffix.
        """
        if fault_plan is not None:
            return False
        return rng.random() < 0.4

    def _draw_tier(self, rng):
        """ISS dispatch-tier axis (docs/performance.md).

        The default block tier dominates, superblocks draw often (the
        profile-guided tier must survive every composed scenario — the
        oracle holds it to serial/parallel byte-identity and clean
        checkpoint round-trips like any other axis), and the legacy
        interpreter draws occasionally as the slow reference
        configuration.
        """
        roll = rng.random()
        if roll < 0.40:
            return "superblocks"
        if roll < 0.52:
            return "interp"
        return "blocks"

    # -- scenario assembly -------------------------------------------------

    def sample(self, rng, index):
        """Draw scenario *index* of a run from *rng*."""
        scheme = rng.choice(self.schemes)
        num_ports, stages = self._draw_topology(rng)
        traffic, burst = self._draw_traffic(rng)
        fault_plan, reliability, watchdog = self._draw_faults(rng)
        dmi = self._draw_dmi(rng, fault_plan)
        tier = self._draw_tier(rng)
        config = RouterConfig(
            scheme=scheme,
            num_ports=num_ports,
            stages=stages,
            traffic=traffic,
            burst=burst,
            fault_plan=fault_plan,
            reliability=reliability,
            watchdog_ticks=watchdog,
            dmi=dmi,
            seed=rng.randrange(1, 10_000),
            max_packets=rng.choice((1, 2)),
            producer_count=rng.choice((2, num_ports)),
            inter_packet_delay=rng.choice((20, 40)) * US,
            sync_quantum=rng.choice(self.QUANTA),
            num_cpus=rng.choice((1, 1, 2)),
            # Scenarios never inherit the ambient REPRO_PARALLEL sweep
            # or REPRO_TIER default: the oracle runs both backends
            # explicitly, and the tier is a sampled axis.
            parallel=None,
            tier=tier,
            workers=rng.choice((2, 3)),
        )
        validate_config(config)
        sim_us = rng.choice((60, 80, 120))
        tier_tag = {"superblocks": "_sb", "interp": "_interp"}.get(tier, "")
        name = "s%03d_%s_p%d_d%d_%s%s%s" % (
            index, scheme.replace("-", ""), num_ports,
            len(stages) if stages else 1,
            (traffic or {}).get("kind", "legacy"),
            "_faulty" if fault_plan else ("_dmi" if dmi else ""),
            tier_tag)
        return Scenario(name=name, sim_us=sim_us, config=config)
