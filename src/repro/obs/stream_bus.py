"""Mid-run event streaming: the observability subscription bus.

End-of-run artifacts (trace dumps, BENCH records, health reports)
cannot show a retransmit storm *while it happens*.  A
:class:`StreamBus` publishes the observability stack's events to
subscribers as the simulation runs: ``trace`` events from a tracer
tap, per-quantum ``metrics`` points from the telemetry sampler
(:mod:`repro.obs.metrics`), ``span``/``health`` payloads from whoever
computes them, each as a plain JSON-ready dict.  Two sinks ship now —
:class:`NdjsonSink` (one canonical JSON line per event, the CI
artifact format) and :class:`CallbackSink` (collect in memory); the
asyncio session server of ROADMAP item 1 subscribes the same way
later.

Publication order is simulation order — taps fire at main-thread
emission and the sampler at committed quantum boundaries — so a
stream captured from a seeded run is byte-stable, serial or parallel
(pool workers never publish: their trace emissions are buffered and
replayed at the commit point before the sampler runs).

:class:`StreamHealthMonitor` upgrades the health analysis from run
totals to windowed *rates*: subscribed to the ``metrics`` topic, it
watches counter deltas per committed quantum and publishes a
``health`` event the moment e.g. retransmits/quantum crosses the
threshold — the live counterpart of
:func:`repro.obs.health.analyze_series`.
"""

import json
from collections import deque


class StreamBus:
    """A synchronous per-topic publish/subscribe fan-out.

    Subscribers are called in subscription order with
    ``callback(topic, payload)``; the ``"*"`` topic receives every
    event.  Synchronous dispatch keeps the bus deterministic — a
    subscriber sees each event at the exact simulation point it was
    published.
    """

    def __init__(self):
        self._subscribers = {}
        self._closers = []
        self.published = 0

    def subscribe(self, topic, callback):
        """Deliver *topic* events (or all, for ``"*"``) to *callback*."""
        self._subscribers.setdefault(topic, []).append(callback)
        return callback

    def unsubscribe(self, topic, callback):
        """Stop delivering *topic* events to *callback*."""
        callbacks = self._subscribers.get(topic)
        if callbacks and callback in callbacks:
            callbacks.remove(callback)

    def publish(self, topic, payload):
        """Fan one event out to the topic's and the ``"*"`` subscribers."""
        self.published += 1
        for callback in self._subscribers.get(topic, ()):
            callback(topic, payload)
        if topic != "*":
            for callback in self._subscribers.get("*", ()):
                callback(topic, payload)

    def add_closer(self, closer):
        """Run *closer* when the bus is closed (detach taps, flush)."""
        self._closers.append(closer)

    def close(self):
        """Detach taps and close owned sinks; the bus stays usable."""
        closers, self._closers = self._closers, []
        for closer in closers:
            closer()


class CallbackSink:
    """Collects published ``(topic, payload)`` pairs in memory."""

    def __init__(self):
        self.events = []

    def __call__(self, topic, payload):
        self.events.append((topic, payload))

    def topics(self):
        """The distinct topics seen, in first-seen order."""
        seen = []
        for topic, __ in self.events:
            if topic not in seen:
                seen.append(topic)
        return seen


class NdjsonSink:
    """Writes each published event as one canonical NDJSON line.

    ``{"topic": ..., "event": {...}}`` with sorted keys and fixed
    separators, so a stream captured from a seeded run is directly
    diffable.  *target* is a path (opened and owned) or an open
    text handle (flushed, not closed).
    """

    def __init__(self, target):
        if hasattr(target, "write"):
            self._handle = target
            self._owns = False
        else:
            self._handle = open(target, "w")
            self._owns = True
        self.lines = 0

    def __call__(self, topic, payload):
        record = {"topic": topic, "event": payload}
        self._handle.write(json.dumps(record, sort_keys=True,
                                      separators=(",", ":")) + "\n")
        self.lines += 1

    def close(self):
        """Close an owned path's handle; just flush a borrowed one."""
        if self._owns:
            self._handle.close()
        else:
            self._handle.flush()


class StreamHealthMonitor:
    """Publishes windowed-rate health findings while the run executes.

    Keeps the newest ``rate_window`` metrics points and, on each new
    point, evaluates per-quantum counter rates against the
    :class:`~repro.obs.health.HealthThresholds` rate rules.  Each rule
    fires at most once per run (the first crossing is the interesting
    moment; the end-of-run :func:`~repro.obs.health.analyze_series`
    pass reports final rates).
    """

    def __init__(self, bus, thresholds=None, window=None):
        from repro.obs.health import HealthThresholds
        self.bus = bus
        self.thresholds = thresholds if thresholds is not None \
            else HealthThresholds()
        self.window = window if window is not None \
            else self.thresholds.rate_window
        self._points = deque(maxlen=max(2, self.window))
        self.fired = set()
        bus.subscribe("metrics", self._on_point)

    def _rules(self):
        thresholds = self.thresholds
        return (("retransmit-rate", "retransmits",
                 thresholds.retransmit_rate),
                ("dmi-invalidation-rate", "dmi_invalidations",
                 thresholds.dmi_invalidation_rate))

    def _on_point(self, topic, payload):
        self._points.append(payload)
        if len(self._points) < 2:
            return
        first, last = self._points[0], self._points[-1]
        span = len(self._points) - 1
        for rule, counter, limit in self._rules():
            if rule in self.fired:
                continue
            rate = (last.get(counter, 0) - first.get(counter, 0)) / span
            if rate >= limit:
                self.fired.add(rule)
                self.bus.publish("health", {
                    "severity": "critical",
                    "rule": rule,
                    "subject": counter,
                    "message": "%.2f %s/quantum over the last %d "
                               "point(s) (threshold %g)"
                               % (rate, counter, span, limit),
                    "sim_now_fs": last.get("sim_now_fs", 0),
                    "timestep": last.get("timestep", 0),
                })


def attach_stream(system, bus=None, monitor=False, thresholds=None):
    """Wire a bus into a built :class:`RouterSystem`.

    Taps the system tracer (each emitted event published on ``trace``)
    and attaches the telemetry sampler's ``metrics`` feed; with
    *monitor* true, a :class:`StreamHealthMonitor` evaluates the
    windowed-rate rules live.  Returns the bus; ``bus.close()``
    detaches the tap again.
    """
    if bus is None:
        bus = StreamBus()
    tracer = system.tracer
    if tracer.enabled:
        def tap(event):
            bus.publish("trace", event.as_dict())
        tracer.add_tap(tap)
        bus.add_closer(lambda: tracer.remove_tap(tap))
    sampler = system.telemetry
    if sampler is not None:
        sampler.attach_bus(bus)
    if monitor:
        StreamHealthMonitor(bus, thresholds=thresholds)
    return bus


def publish_report(bus, report):
    """Publish each finding of a HealthReport as a ``health`` event."""
    for finding in report.findings:
        bus.publish("health", finding.as_dict())
    return len(report.findings)
