"""Small deterministic traced scenarios shared by tests and the CLI.

One scenario shape — the paper's router case study at quickstart scale
(two producers, a couple of packets each) — runnable under any of the
three co-simulation schemes with tracing enabled, optionally over a
faulty reliable transport.  The golden-trace regression tests, the
determinism property tests and the ``repro trace`` / ``repro bench``
CLI commands all build their runs here, so they observe the exact same
event streams.
"""

from dataclasses import dataclass

from repro.obs.attrib import (AttributionProfiler, attach_attrib,
                              attrib_summary, side_exit_profile)
from repro.obs.bench import BenchRun
from repro.obs.hist import (build_histograms, latency_counters,
                            latency_summaries)
from repro.obs.spans import spans_from_tracer
from repro.obs.tracer import Tracer
from repro.router.system import RouterConfig, build_system
from repro.sysc.simtime import US

COSIM_SCHEMES = ("gdb-wrapper", "gdb-kernel", "driver-kernel")

#: Deterministic fault scenarios for ``repro health`` and its tests:
#: ``storm`` drops every third frame from index 8 on under the reliable
#: transport (recovered, but far past the storm threshold); ``stall``
#: drops everything from index 8 on an *unreliable* link, so the guest
#: blocks on a READ_REPLY that never comes and the watchdog fires;
#: ``thrash`` toggles a watchpoint against a DMI-tier run so the same
#: guest pages collect grant invalidations past the dmi-storm
#: threshold (docs/dmi.md).
CHAOS_KINDS = ("storm", "stall", "thrash")


@dataclass
class TracedRun:
    """A finished traced scenario: the system, its tracer and stats."""

    scheme: str
    system: object
    tracer: Tracer
    stats: object


def run_traced_scenario(scheme, sim_us=120, seed=7, max_packets=2,
                        producer_count=2, inter_packet_delay_us=20,
                        reliability=None, fault_plan=None,
                        watchdog_ticks=None, tracer=None, capacity=200_000,
                        sync_quantum=1, num_cpus=None, parallel=None,
                        workers=None, attrib=None, **config_overrides):
    """Run the quickstart-scale router scenario under *scheme*, traced.

    Everything is seeded and simulated-time driven, so two calls with
    the same arguments produce byte-identical traces (the determinism
    tests rely on this) — including under the parallel dispatcher,
    whose quantum-boundary commit keeps traces and metrics identical to
    serial.  Returns a :class:`TracedRun`.  At ``sync_quantum`` > 1 the
    scheme batches ISS synchronisations (see ``docs/performance.md``);
    the default is exact lock-step.  *parallel*/*workers* of ``None``
    defer to the ``REPRO_PARALLEL``/``REPRO_WORKERS`` environment
    (serial when unset); pass ``False`` to force serial.  Further
    keyword arguments (``num_ports``, ``stages``, ``traffic``, …) pass
    through to :class:`~repro.router.system.RouterConfig` — the fuzzer
    sweeps topology and traffic this way (docs/fuzzing.md).
    """
    if tracer is None:
        tracer = Tracer(capacity=capacity)
    extra = dict(config_overrides)
    if num_cpus is not None:
        extra["num_cpus"] = num_cpus
    if parallel is not None:
        extra["parallel"] = parallel or None
    if workers is not None:
        extra["workers"] = workers
    config = RouterConfig(
        scheme=scheme,
        seed=seed,
        max_packets=max_packets,
        producer_count=producer_count,
        inter_packet_delay=inter_packet_delay_us * US,
        reliability=reliability,
        fault_plan=fault_plan,
        watchdog_ticks=watchdog_ticks,
        tracer=tracer,
        sync_quantum=sync_quantum,
        **extra,
    )
    system = build_system(config)
    if attrib is not None:
        # Wall-time attribution hooks in between build and run: the
        # profiler only reads the host clock, so it never perturbs
        # the deterministic counters or traces.
        attach_attrib(system, attrib)
    system.run(sim_us * US)
    return TracedRun(scheme=scheme, system=system, tracer=tracer,
                     stats=system.stats())


def bench_scenario(scheme, sim_us=120, seed=7, name=None, **overrides):
    """Run a traced scenario and fold it into a :class:`BenchRun`.

    The returned run's ``counters`` are fully deterministic; only its
    ``wall`` object depends on the host.
    """
    run = BenchRun(name=name or ("cli_%s" % scheme)).start()
    profiler = AttributionProfiler()
    traced = run_traced_scenario(scheme, sim_us=sim_us, seed=seed,
                                 attrib=profiler, **overrides)
    run.stop()
    run.config.update({"scheme": scheme, "sim_us": sim_us, "seed": seed,
                       "sync_quantum": overrides.get("sync_quantum", 1),
                       "tier": traced.system.config.tier})
    run.record_metrics(traced.system.metrics)
    # Span latencies: deterministic integers in simulated femtoseconds,
    # derived from the trace after the run (the overhead guard keeps
    # them out of the hot path).  The summaries also land on the
    # metrics bundle for the profile view.
    histograms = build_histograms(spans_from_tracer(traced.tracer))
    traced.system.metrics.attach_latency(latency_summaries(histograms))
    run.record(**latency_counters(histograms))
    run.record(**{"trace.dropped": traced.tracer.dropped})
    run.record(
        trace_events=len(traced.tracer),
        generated=traced.stats.generated,
        forwarded=traced.stats.forwarded,
        received=traced.stats.received,
        simulated_fs=traced.system.kernel.now,
        timesteps=traced.system.kernel.timestep_count,
        deltas=traced.system.kernel.delta_count,
        iss_instructions=sum(cpu.instructions
                             for cpu in traced.system.cpus),
    )
    # Execution profile: the top block starts by entry count, per
    # context.  Deterministic (the profiler replays identically across
    # serial/parallel runs) but informative-only — it lives in the
    # record's ``profile`` section, outside the gated counters.
    run.profile["hot_blocks"] = {
        cpu.name: [[pc, count] for pc, count
                   in cpu.block_profiler.hot_blocks()]
        for cpu in traced.system.cpus}
    # Superblock side-exit hot spots: where the profiled traces bail
    # back to the block tier.  Deterministic, informative-only.
    run.profile["side_exits"] = side_exit_profile(traced.system.cpus)
    # Host-dependent dispatcher figures (pool utilization, commit
    # stalls) belong to the wall object, never to the deterministic
    # counters the regression gate compares.
    parallel_stats = traced.system.parallel_stats(run.wall_seconds)
    if parallel_stats is not None:
        run.wall_extra["parallel"] = parallel_stats
    # Wall-time attribution: exclusive seconds per layer (per-tier
    # ISS, scheme transport, kernel residual, commit-stall overlay).
    # Host-dependent, so it lives next to the parallel figures in
    # wall_extra, outside the gated counters.
    run.wall_extra["attrib"] = attrib_summary(
        profiler, wall_seconds=run.wall_seconds, parallel=parallel_stats)
    traced.system.close()
    return traced, run


def chaos_health_scenario(kind, scheme=None, tracer=None):
    """One seeded fault scenario the health analyzer must flag.

    ``storm``: the reliable transport over a link that drops every
    third frame from index 8 — the run completes (every loss is
    recovered) but leaves a retransmission count far past the storm
    threshold.  ``stall``: an *unreliable* Driver-Kernel link that
    swallows everything from frame 8, so a guest blocks forever on its
    READ_REPLY, its driver round-trip span never closes, and the
    watchdog quarantines the context.  ``thrash``: a DMI-tier run
    whose CPU has a data watchpoint armed and disarmed on a fixed
    simulated cadence — every disarmed stretch re-acquires the grants
    the armed stretch killed, so one page's invalidation count sails
    past the dmi-storm threshold without the table ever degrading.
    Returns a :class:`TracedRun`.
    """
    from repro.cosim.faults import FaultPlan
    if kind == "thrash":
        from repro.iss.breakpoints import WatchKind
        if tracer is None:
            tracer = Tracer(capacity=200_000)
        config = RouterConfig(
            scheme=scheme or "gdb-kernel", seed=7, max_packets=6,
            producer_count=2, inter_packet_delay=20 * US,
            sync_quantum=8, dmi=True, tracer=tracer, parallel=False)
        system = build_system(config)
        # Armed at an address the guest never touches: the watchpoint
        # never *fires*, but its mere existence voids every grant at
        # the next acquire (transactional precision would be owed if
        # it could hit), and removal lets the windows come back.
        breakpoints = system.cpus[0].breakpoints
        for slice_index in range(16):
            system.run(30 * US)
            if slice_index % 2 == 0:
                breakpoints.add_watch(0x0FFFFFF0, kind=WatchKind.READ)
            else:
                breakpoints.remove_watch(0x0FFFFFF0)
        return TracedRun(scheme=config.scheme, system=system,
                         tracer=tracer, stats=system.stats())
    if kind == "storm":
        plan = FaultPlan(script={index: "drop"
                                 for index in range(8, 200, 3)})
        return run_traced_scenario(
            scheme or "gdb-kernel", sim_us=200, seed=7, max_packets=1,
            reliability=True, fault_plan=plan, tracer=tracer,
            parallel=False)
    if kind == "stall":
        plan = FaultPlan(script={index: "drop"
                                 for index in range(8, 4096)})
        return run_traced_scenario(
            scheme or "driver-kernel", sim_us=400, seed=7, max_packets=6,
            fault_plan=plan, watchdog_ticks=60, tracer=tracer,
            parallel=False)
    raise ValueError("unknown chaos kind %r (expected one of %s)"
                     % (kind, ", ".join(CHAOS_KINDS)))
