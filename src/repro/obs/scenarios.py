"""Small deterministic traced scenarios shared by tests and the CLI.

One scenario shape — the paper's router case study at quickstart scale
(two producers, a couple of packets each) — runnable under any of the
three co-simulation schemes with tracing enabled, optionally over a
faulty reliable transport.  The golden-trace regression tests, the
determinism property tests and the ``repro trace`` / ``repro bench``
CLI commands all build their runs here, so they observe the exact same
event streams.
"""

from dataclasses import dataclass

from repro.obs.bench import BenchRun
from repro.obs.tracer import Tracer
from repro.router.system import RouterConfig, build_system
from repro.sysc.simtime import US

COSIM_SCHEMES = ("gdb-wrapper", "gdb-kernel", "driver-kernel")


@dataclass
class TracedRun:
    """A finished traced scenario: the system, its tracer and stats."""

    scheme: str
    system: object
    tracer: Tracer
    stats: object


def run_traced_scenario(scheme, sim_us=120, seed=7, max_packets=2,
                        producer_count=2, inter_packet_delay_us=20,
                        reliability=None, fault_plan=None,
                        watchdog_ticks=None, tracer=None, capacity=200_000,
                        sync_quantum=1, num_cpus=None, parallel=None,
                        workers=None):
    """Run the quickstart-scale router scenario under *scheme*, traced.

    Everything is seeded and simulated-time driven, so two calls with
    the same arguments produce byte-identical traces (the determinism
    tests rely on this) — including under the parallel dispatcher,
    whose quantum-boundary commit keeps traces and metrics identical to
    serial.  Returns a :class:`TracedRun`.  At ``sync_quantum`` > 1 the
    scheme batches ISS synchronisations (see ``docs/performance.md``);
    the default is exact lock-step.  *parallel*/*workers* of ``None``
    defer to the ``REPRO_PARALLEL``/``REPRO_WORKERS`` environment
    (serial when unset); pass ``False`` to force serial.
    """
    if tracer is None:
        tracer = Tracer(capacity=capacity)
    extra = {}
    if num_cpus is not None:
        extra["num_cpus"] = num_cpus
    if parallel is not None:
        extra["parallel"] = parallel or None
    if workers is not None:
        extra["workers"] = workers
    config = RouterConfig(
        scheme=scheme,
        seed=seed,
        max_packets=max_packets,
        producer_count=producer_count,
        inter_packet_delay=inter_packet_delay_us * US,
        reliability=reliability,
        fault_plan=fault_plan,
        watchdog_ticks=watchdog_ticks,
        tracer=tracer,
        sync_quantum=sync_quantum,
        **extra,
    )
    system = build_system(config)
    system.run(sim_us * US)
    return TracedRun(scheme=scheme, system=system, tracer=tracer,
                     stats=system.stats())


def bench_scenario(scheme, sim_us=120, seed=7, name=None, **overrides):
    """Run a traced scenario and fold it into a :class:`BenchRun`.

    The returned run's ``counters`` are fully deterministic; only its
    ``wall`` object depends on the host.
    """
    run = BenchRun(name=name or ("cli_%s" % scheme)).start()
    traced = run_traced_scenario(scheme, sim_us=sim_us, seed=seed,
                                 **overrides)
    run.stop()
    run.config.update({"scheme": scheme, "sim_us": sim_us, "seed": seed,
                       "sync_quantum": overrides.get("sync_quantum", 1)})
    run.record_metrics(traced.system.metrics)
    run.record(
        trace_events=len(traced.tracer),
        generated=traced.stats.generated,
        forwarded=traced.stats.forwarded,
        received=traced.stats.received,
        simulated_fs=traced.system.kernel.now,
        timesteps=traced.system.kernel.timestep_count,
        deltas=traced.system.kernel.delta_count,
        iss_instructions=sum(cpu.instructions
                             for cpu in traced.system.cpus),
    )
    # Host-dependent dispatcher figures (pool utilization, commit
    # stalls) belong to the wall object, never to the deterministic
    # counters the regression gate compares.
    parallel_stats = traced.system.parallel_stats(run.wall_seconds)
    if parallel_stats is not None:
        run.wall_extra["parallel"] = parallel_stats
    traced.system.close()
    return traced, run
