"""Wall-time attribution across the co-simulation layers.

The deterministic counters say *how many* syncs and instructions a run
made; this module says *where the host's wall clock went* while making
them: per-tier ISS execution (``iss.interp`` / ``iss.blocks`` /
``iss.superblocks``), scheme transport work (``transport`` — driving
breakpoint exchanges, socket drains, quantum commits), dispatcher
commit stalls, and the SystemC scheduler residual.  It also folds the
superblock tier's side-exit analytics (which chained traces keep
bailing out early, and where) so the re-profiling work of ROADMAP
item 4 has data to steer by.

An :class:`AttributionProfiler` keeps a per-thread measurement stack
and charges each bucket its *exclusive* time: ISS execution is
measured inside the scheme's transport measurement, so the transport
bucket is pure scheme/protocol overhead, not a double count.  The
clock is injectable for deterministic tests; totals merge under a lock
so pool threads can measure safely.  Everything here is host wall
time — informative, folded into BENCH records under ``attrib.*``,
never gated (the deterministic counters gate; see
``docs/performance.md``).
"""

import threading
import time

#: The scheduler-residual bucket name: wall time not measured by any
#: instrumented layer (kernel bookkeeping, channel updates, tracing).
KERNEL_BUCKET = "kernel"

#: Overlay bucket for dispatcher commit stalls; this wall time is
#: *inside* the transport measurement (the hook blocks in commit), so
#: it is reported beside the exclusive buckets, never summed with them.
STALL_BUCKET = "commit_stall"


class _Measure:
    """Context manager charging one bucket on the profiler's stack."""

    __slots__ = ("profiler", "bucket")

    def __init__(self, profiler, bucket):
        self.profiler = profiler
        self.bucket = bucket

    def __enter__(self):
        self.profiler.enter(self.bucket)
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        self.profiler.leave()
        return False


class AttributionProfiler:
    """Buckets elapsed wall time per co-simulation layer.

    ``measure(bucket)`` nests: a bucket is charged only the time not
    spent in measurements opened inside it, so a transport measurement
    wrapping an ISS measurement yields two non-overlapping buckets
    whose sum is the true elapsed span.  *clock* defaults to
    ``time.perf_counter`` and is injectable for deterministic tests.
    """

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else time.perf_counter
        self.totals = {}
        self.counts = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def enter(self, bucket):
        """Open a measurement; pair with :meth:`leave` (LIFO)."""
        self._stack().append([bucket, self.clock(), 0.0])

    def leave(self):
        """Close the innermost measurement and charge its bucket."""
        stack = self._stack()
        bucket, started, child_elapsed = stack.pop()
        elapsed = self.clock() - started
        if stack:
            stack[-1][2] += elapsed
        self.add(bucket, elapsed - child_elapsed)

    def measure(self, bucket):
        """``with profiler.measure("transport"): ...``"""
        return _Measure(self, bucket)

    def add(self, bucket, seconds, count=1):
        """Fold externally-measured time into a bucket."""
        with self._lock:
            self.totals[bucket] = self.totals.get(bucket, 0.0) + seconds
            self.counts[bucket] = self.counts.get(bucket, 0) + count

    def accounted(self):
        """Total exclusive seconds across every bucket."""
        with self._lock:
            return sum(self.totals.values())

    def as_dict(self, wall_seconds=None):
        """BENCH-ready summary (``attrib.*``; sorted, plain JSON).

        With *wall_seconds*, each bucket gains its ``share`` of the
        wall and the unmeasured remainder is reported as the
        :data:`KERNEL_BUCKET` residual — scheduler bookkeeping,
        channel updates and tracing run between the instrumented
        layers.
        """
        with self._lock:
            totals = dict(self.totals)
            counts = dict(self.counts)
        accounted = sum(totals.values())
        if wall_seconds is not None:
            residual = max(0.0, wall_seconds - accounted)
            totals[KERNEL_BUCKET] = totals.get(KERNEL_BUCKET, 0.0) + residual
            counts.setdefault(KERNEL_BUCKET, 0)
        buckets = {}
        for name in sorted(totals):
            entry = {"seconds": round(totals[name], 6),
                     "calls": counts.get(name, 0)}
            if wall_seconds:
                entry["share"] = round(totals[name] / wall_seconds, 4)
            buckets[name] = entry
        summary = {"buckets": buckets,
                   "accounted_seconds": round(accounted, 6)}
        if wall_seconds is not None:
            summary["wall_seconds"] = round(wall_seconds, 6)
        return summary


def attach_attrib(system, profiler=None):
    """Wire a profiler into a built :class:`RouterSystem`.

    Points every CPU (per-tier ``iss.*`` buckets), every scheme hook
    and every wrapper module (``transport``) at *profiler*; forked
    process workers predate this call and measure nothing — the
    master-side blocking exchange is charged as ISS time instead,
    which is the attribution a master-host profile wants.
    """
    if profiler is None:
        profiler = AttributionProfiler()
    for cpu in system.cpus:
        cpu._attrib = profiler
    scheme = system.scheme
    if scheme is not None:
        hook = getattr(scheme, "hook", None)
        if hook is not None:
            hook.attrib = profiler
        for wrapper in getattr(scheme, "wrappers", ()):
            wrapper.attrib = profiler
    system.attrib = profiler
    return profiler


def attrib_summary(profiler, wall_seconds=None, parallel=None):
    """The ``wall_extra["attrib"]`` fold for a BENCH record.

    *parallel* is the ``system.parallel_stats()`` mapping; its
    ``stall_seconds`` becomes the :data:`STALL_BUCKET` overlay — the
    dispatcher's commit-order wait already elapses inside the
    transport measurement, so the overlay is reported beside the
    exclusive buckets rather than summed into ``accounted_seconds``.
    """
    summary = profiler.as_dict(wall_seconds)
    if parallel:
        stall = float(parallel.get("stall_seconds") or 0.0)
        if stall > 0.0:
            summary["buckets"][STALL_BUCKET] = {
                "seconds": round(stall, 6),
                "calls": int(parallel.get("commit_stalls") or 0),
                "overlay": True,
            }
            if wall_seconds:
                summary["buckets"][STALL_BUCKET]["share"] = round(
                    stall / wall_seconds, 4)
    return summary


def side_exit_profile(cpus, limit=8):
    """Top side-exit sites merged across *cpus*.

    Returns ``[[hex_pc, count], ...]`` hottest first (ties by address)
    — the superblock starts whose chained traces most often bail out
    through a guard, i.e. the re-profiling candidates of ROADMAP
    item 4.  Plain JSON for the BENCH ``profile.side_exits`` section.
    """
    merged = {}
    for cpu in cpus:
        for pc, count in cpu.side_exit_sites.items():
            merged[pc] = merged.get(pc, 0) + count
    ranked = sorted(merged.items(), key=lambda item: (-item[1], item[0]))
    return [["0x%08x" % pc, count] for pc, count in ranked[:limit]]
