"""Rule-based co-simulation health analysis.

Co-simulation failure has recurring shapes: a transaction that opened
but never closed (a guest blocked on a READ_REPLY that is not coming),
a retransmission storm (the transport fighting a bad link instead of
making progress), a watchdog quarantine, flow-control holds dominating
breakpoint servicing, and latency distributions drifting between
revisions.  :func:`analyze_run` applies those rules to one finished
traced run; :func:`analyze_records` applies the record-level rules to a
directory of ``BENCH_*.json`` files (optionally against committed
baselines).  Both produce a :class:`HealthReport` whose
:attr:`~HealthReport.exit_code` is CI-friendly: ``0`` when no finding
is critical, ``1`` otherwise — ``repro health`` exits with it.
"""

import os
from dataclasses import dataclass, field

from repro.obs.bench import load_report
from repro.obs.hist import LATENCY_KINDS
from repro.obs.spans import build_spans

SEVERITIES = ("info", "warning", "critical")

#: Span kinds whose open-at-end-of-trace state means a peer owes a
#: response — a genuine stall.  ``breakpoint_sync`` is absent by
#: design: the GDB schemes *deliberately* park a guest on a
#: flow-control hold until a port goes fresh, so a run routinely ends
#: with held stops open (reported as info; pathological hold rates are
#: caught by the hold-hot-spot rule instead).
STALL_CRITICAL_KINDS = frozenset((
    "driver_round_trip", "driver_write", "interrupt_delivery",
    "transport", "parallel_window"))


@dataclass(frozen=True)
class HealthThresholds:
    """Tuning knobs of the analyzer rules."""

    #: retransmits on one endpoint label before it counts as a storm.
    retransmit_storm: int = 8
    #: timesteps a span may stay open before it counts as stalled.
    stall_age_timesteps: int = 50
    #: flow-control holds per breakpoint stop before servicing counts
    #: as hold-dominated (a commit-stall hot spot).
    commit_stall_ratio: float = 0.5
    #: multiplier over the baseline p90 before a latency counter
    #: counts as regressed.
    latency_regression: float = 1.5
    #: DMI invalidations hitting one guest page of one context before
    #: the grant/invalidate cycle counts as a storm (the zero-copy
    #: tier thrashing against a precision trigger instead of falling
    #: back cleanly — see docs/dmi.md).
    dmi_invalidation_storm: int = 6
    #: telemetry points of the windowed-rate rules' sliding window
    #: (:func:`analyze_series`; one point per committed quantum).
    rate_window: int = 8
    #: retransmits per committed quantum, sustained over the window,
    #: before the link counts as storming *right now* — the live
    #: counterpart of the run-total ``retransmit_storm`` rule.
    retransmit_rate: float = 2.0
    #: DMI invalidations per committed quantum over the window before
    #: the grant/invalidate cycle counts as thrashing live.
    dmi_invalidation_rate: float = 1.5


@dataclass(frozen=True)
class Finding:
    """One analyzer observation."""

    severity: str
    rule: str
    subject: str
    message: str

    def render(self):
        """The finding as one aligned plain-text line."""
        return "%-8s %-18s %-20s %s" % (self.severity.upper(), self.rule,
                                        self.subject, self.message)

    def as_dict(self):
        """The finding as a plain JSON-serialisable dict."""
        return {"severity": self.severity, "rule": self.rule,
                "subject": self.subject, "message": self.message}


@dataclass
class HealthReport:
    """The findings of one analysis pass."""

    findings: list = field(default_factory=list)

    def add(self, severity, rule, subject, message):
        """Record one finding."""
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % (severity,))
        self.findings.append(Finding(severity, rule, subject, message))

    def by_severity(self, severity):
        """The findings of one severity, in insertion order."""
        return [finding for finding in self.findings
                if finding.severity == severity]

    @property
    def exit_code(self):
        """``1`` when any finding is critical, else ``0``."""
        return 1 if self.by_severity("critical") else 0

    def extend(self, other):
        """Fold *other* report's findings into this one."""
        self.findings.extend(other.findings)

    def render(self):
        """The report as plain text (stable ordering)."""
        if not self.findings:
            return "health: OK (no findings)"
        ordered = sorted(
            self.findings,
            key=lambda f: (-SEVERITIES.index(f.severity), f.rule,
                           f.subject))
        lines = ["health: %d finding(s), %d critical"
                 % (len(self.findings), len(self.by_severity("critical")))]
        lines.extend(finding.render() for finding in ordered)
        return "\n".join(lines)

    def as_dict(self):
        """The report as a plain JSON-serialisable dict.

        Findings keep their stable :meth:`render` ordering (severity
        descending, then rule/subject) so the machine-readable form of
        one analysis is byte-stable; the summary mirrors
        :attr:`exit_code` for consumers that only gate.
        """
        ordered = sorted(
            self.findings,
            key=lambda f: (-SEVERITIES.index(f.severity), f.rule,
                           f.subject))
        return {
            "findings": [finding.as_dict() for finding in ordered],
            "counts": {severity: len(self.by_severity(severity))
                       for severity in SEVERITIES},
            "exit_code": self.exit_code,
        }

    def to_json(self):
        """:meth:`as_dict` serialised canonically (``--format json``)."""
        import json
        return json.dumps(self.as_dict(), sort_keys=True, indent=2)


def analyze_run(events, metrics=None, thresholds=None, dropped=0,
                spans=None):
    """Apply the trace-level rules to one finished run.

    *events* is the tracer's event list; *metrics* (optional) supplies
    the quarantine log; *dropped* is the tracer's overflow count;
    *spans* may be passed to reuse an already-built span set.
    """
    thresholds = thresholds or HealthThresholds()
    report = HealthReport()
    if spans is None:
        spans = build_spans(events)
    final_timestep = max((event.timestep for event in events), default=0)

    retransmits = {}
    holds = {}
    stops = {}
    dmi_invalidations = {}
    for event in events:
        key = event.key
        if key == "transport/retransmit":
            retransmits[event.scope] = retransmits.get(event.scope, 0) + 1
        elif key == "cosim/flow_hold":
            holds[event.scope] = holds.get(event.scope, 0) + 1
        elif key == "cosim/bp_stop":
            stops[event.scope] = stops.get(event.scope, 0) + 1
        elif key == "cosim/dmi_invalidate":
            spot = (event.scope, event.args.get("page", -1))
            dmi_invalidations[spot] = dmi_invalidations.get(spot, 0) + 1
        elif key == "cosim/quarantine":
            report.add("critical", "quarantine", event.scope,
                       "context quarantined: %s"
                       % event.args.get("reason", "?"))

    # Quarantines recorded by metrics but outside the trace window
    # (e.g. the ring dropped the event) still count.
    if metrics is not None:
        traced = {finding.subject
                  for finding in report.findings
                  if finding.rule == "quarantine"}
        for context, reason in metrics.quarantine_log():
            if context not in traced:
                report.add("critical", "quarantine", context,
                           "context quarantined: %s" % reason)

    for scope, count in sorted(retransmits.items()):
        if count >= thresholds.retransmit_storm:
            report.add("critical", "retransmit-storm", scope,
                       "%d retransmissions (threshold %d): the link is "
                       "losing frames faster than the run makes progress"
                       % (count, thresholds.retransmit_storm))
        else:
            report.add("info", "retransmits", scope,
                       "%d retransmission(s) recovered" % count)

    for (scope, page), count in sorted(dmi_invalidations.items()):
        if count >= thresholds.dmi_invalidation_storm:
            report.add("critical", "dmi-storm",
                       "%s:page%d" % (scope, page),
                       "%d DMI invalidations on one page (threshold %d): "
                       "the grant/invalidate cycle is thrashing against "
                       "a precision trigger instead of degrading"
                       % (count, thresholds.dmi_invalidation_storm))
        else:
            report.add("info", "dmi-invalidations",
                       "%s:page%d" % (scope, page),
                       "%d precise fallback(s) to the transactional tier"
                       % count)

    for span in spans:
        if span.closed:
            continue
        if span.kind == "dmi_window":
            # A grant still open at end of run is the tier's healthy
            # steady state, not a stalled peer (docs/dmi.md).
            continue
        age = final_timestep - span.open_timestep
        if age >= thresholds.stall_age_timesteps:
            severity = ("critical" if span.kind in STALL_CRITICAL_KINDS
                        else "info")
            report.add(severity, "stalled-span", span.span_id,
                       "%s open for %d timesteps (threshold %d)"
                       % (span.kind, age, thresholds.stall_age_timesteps))

    for scope, count in sorted(holds.items()):
        total = stops.get(scope, 0)
        if total and count / total >= thresholds.commit_stall_ratio:
            report.add("warning", "hold-hot-spot", scope,
                       "%d of %d breakpoint stops flow-control held "
                       "(>= %d%%): a consumer is starving this context"
                       % (count, total,
                          round(thresholds.commit_stall_ratio * 100)))

    if dropped:
        report.add("warning", "trace-dropped", "tracer",
                   "%d event(s) dropped by the trace ring: span and "
                   "latency figures are incomplete" % dropped)
    return report


def analyze_recovery_log(log, max_attempts=2):
    """Report crash-recovery events recorded by a CheckpointRunner.

    *log* is the runner's ``recovery_log`` (or the ``recovery.json``
    it writes next to its checkpoints).  Each successful recovery is
    a warning — the run completed, but something crashed along the
    way; a context that spent the whole *max_attempts* budget was
    degraded to quarantine, which is critical.
    """
    report = HealthReport()
    if not log:
        report.add("info", "crash-recovery", "checkpoint",
                   "no recovery events recorded")
        return report
    attempts = {}
    for entry in log:
        context = entry.get("context", "?")
        attempts[context] = max(attempts.get(context, 0),
                                entry.get("attempt", 1))
        report.add("warning", "crash-recovery", context,
                   "recovered from %s in slice %s (attempt %s, at %s)"
                   % (entry.get("code", "?"), entry.get("slice", "?"),
                      entry.get("attempt", "?"),
                      entry.get("where", "?")))
    for context, used in sorted(attempts.items()):
        if used >= max_attempts:
            report.add("critical", "recovery-exhausted", context,
                       "%d failed recoveries: context degraded to "
                       "quarantine" % used)
    return report


def analyze_records(records_dir, baseline_dir=None, thresholds=None):
    """Apply the record-level rules to a ``BENCH_*.json`` directory.

    Checks every record for quarantines, retransmission storms and
    truncated traces; with *baseline_dir*, additionally compares each
    record's ``latency.*.p90`` counters against the same-named baseline
    record and flags regressions beyond the threshold multiplier.
    """
    thresholds = thresholds or HealthThresholds()
    report = HealthReport()
    names = sorted(name for name in os.listdir(records_dir)
                   if name.startswith("BENCH_") and name.endswith(".json"))
    if not names:
        report.add("warning", "no-records", records_dir,
                   "no BENCH_*.json records found")
        return report
    for name in names:
        record = load_report(os.path.join(records_dir, name))
        counters = record.get("counters", {})
        subject = record.get("name", name)
        if counters.get("contexts_quarantined", 0):
            report.add("critical", "quarantine", subject,
                       "%d context(s) quarantined"
                       % counters["contexts_quarantined"])
        retransmits = counters.get("retransmits", 0)
        if retransmits >= thresholds.retransmit_storm:
            report.add("critical", "retransmit-storm", subject,
                       "%d retransmissions (threshold %d)"
                       % (retransmits, thresholds.retransmit_storm))
        invalidations = counters.get("dmi_invalidations", 0)
        if invalidations >= thresholds.dmi_invalidation_storm:
            report.add("critical", "dmi-storm", subject,
                       "%d DMI invalidations (threshold %d)"
                       % (invalidations, thresholds.dmi_invalidation_storm))
        if counters.get("trace.dropped", 0):
            report.add("warning", "trace-dropped", subject,
                       "%d trace event(s) dropped"
                       % counters["trace.dropped"])
        if baseline_dir is not None:
            baseline_path = os.path.join(baseline_dir, name)
            if os.path.exists(baseline_path):
                _compare_latency(report, subject, counters,
                                 load_report(baseline_path), thresholds)
    return report


def analyze_series(series, thresholds=None):
    """Windowed-rate rules over a telemetry time-series.

    *series* is a :class:`~repro.obs.metrics.MetricsSeries` (one point
    per committed quantum).  Where :func:`analyze_run` sees only run
    totals, these rules evaluate the *recent* per-quantum rates over
    the newest ``thresholds.rate_window`` points: a link can be
    storming right now even though the whole-run retransmit total is
    still under the storm threshold, and a run that stopped retiring
    ISS cycles while SystemC timesteps keep advancing is wedged no
    matter what the totals say.
    """
    thresholds = thresholds or HealthThresholds()
    report = HealthReport()
    if len(series) < 2:
        report.add("info", "telemetry", "series",
                   "%d telemetry point(s): too few for windowed rates"
                   % len(series))
        return report
    window = min(len(series), thresholds.rate_window)
    rates = series.rates(window)

    retransmit_rate = rates.get("retransmits", 0.0)
    if retransmit_rate >= thresholds.retransmit_rate:
        report.add("critical", "retransmit-rate", "transport",
                   "%.2f retransmits/quantum over the last %d point(s) "
                   "(threshold %g): the link is storming right now"
                   % (retransmit_rate, window, thresholds.retransmit_rate))

    dmi_rate = rates.get("dmi_invalidations", 0.0)
    if dmi_rate >= thresholds.dmi_invalidation_rate:
        report.add("critical", "dmi-invalidation-rate", "dmi",
                   "%.2f invalidations/quantum over the last %d point(s) "
                   "(threshold %g): the grant/invalidate cycle is "
                   "thrashing live"
                   % (dmi_rate, window, thresholds.dmi_invalidation_rate))

    if rates.get("iss_cycles", 0.0) == 0.0 \
            and rates.get("sc_timesteps", 0.0) > 0.0:
        report.add("warning", "no-execution-progress", "iss",
                   "0 ISS cycles retired over the last %d point(s) while "
                   "SystemC advanced: every context is parked or wedged"
                   % window)

    if not report.findings:
        report.add("info", "telemetry", "series",
                   "%d point(s), window %d: rates within thresholds"
                   % (len(series), window))
    return report


def _compare_latency(report, subject, counters, baseline, thresholds):
    base_counters = baseline.get("counters", {})
    for kind in LATENCY_KINDS:
        key = "latency.%s.p90" % kind
        base_value = base_counters.get(key, 0)
        value = counters.get(key, 0)
        if base_value and value > base_value * thresholds.latency_regression:
            report.add("critical", "latency-regression",
                       "%s:%s" % (subject, kind),
                       "p90 %d fs vs baseline %d fs (> x%.1f)"
                       % (value, base_value,
                          thresholds.latency_regression))
