"""Causal transaction spans reconstructed from trace events.

The tracer's event stream is flat; this module folds it back into the
*transactions* the co-simulation is made of.  Every cross-boundary
exchange carries a deterministic correlation id in its events' ``span``
argument:

========================  ==========================================
span id                   transaction
========================  ==========================================
``bp:<target>:<n>``       breakpoint stop → RSP transfers → resume
                          (GDB schemes; held stops stay open across
                          flow-control retries)
``drv:<rtos>:<seq>``      guest READ issue → kernel reply → guest
                          wake-up (Driver-Kernel round trip)
``drvw:<rtos>:<seq>``     guest WRITE issue → kernel port delivery
``irq:<rtos>:<n>``        interrupt posted on the socket → guest ISR
                          entry (closed by vector match, which
                          handles coalesced deliveries)
``tx:<wire>:<seq>``       reliable-transport DATA frame send → ACK
                          (retransmits annotate the open span)
``par:<context>:<n>``     parallel dispatch → quantum-boundary
                          commit window (``trace_commits`` runs only)
``dmi:<context>:<n>``     DMI grant window: acquisition → precise
                          invalidation (a window still open at end of
                          run is the healthy steady state — the
                          health analyzer exempts it from the
                          stalled-span rule)
========================  ==========================================

Ids derive from kernel-state counters and message sequence numbers —
never the wall clock — and are allocated on the main thread, so serial
and parallel executions of the same scenario produce byte-identical
span sets (a property test asserts this).

:func:`build_spans` turns an event list into :class:`Span` records;
:func:`dump_spans` serialises them canonically; :func:`perfetto_spans`
exports Chrome/Perfetto *async* slices so the spans render as real
intervals on the simulated timeline.
"""

import json

#: event key -> span kind, for events that OPEN a span.
OPEN_EVENTS = {
    "cosim/bp_stop": "breakpoint_sync",
    "driver/read_issue": "driver_round_trip",
    "driver/write_issue": "driver_write",
    "driver/interrupt": "interrupt_delivery",
    "transport/send": "transport",
    "cosim/parallel_dispatch": "parallel_window",
    "cosim/dmi_grant": "dmi_window",
}

#: event keys that CLOSE the span named by their ``span`` argument.
CLOSE_EVENTS = frozenset((
    "cosim/bp_resume",
    "driver/read_reply",
    "driver/write",
    "transport/ack",
    "cosim/parallel_commit",
    "cosim/dmi_invalidate",
))

#: ``rtos/isr_enter`` has no span argument: it closes every open
#: ``irq:<scope>:*`` span whose opening vector matches its own.
ISR_ENTER = "rtos/isr_enter"


class Span:
    """One reconstructed transaction interval.

    ``close_*`` fields are ``None`` while the span is open — a span
    still open at end of trace is a *stalled* transaction (the health
    analyzer ages these).  ``annotations`` counts the mid-span events
    (transfers, retransmits, flow holds) that carried this span's id.
    """

    __slots__ = ("span_id", "kind", "scope", "open_seq", "open_timestep",
                 "open_now", "close_seq", "close_timestep", "close_now",
                 "annotations", "args")

    def __init__(self, span_id, kind, scope, open_seq, open_timestep,
                 open_now, args):
        self.span_id = span_id
        self.kind = kind
        self.scope = scope
        self.open_seq = open_seq
        self.open_timestep = open_timestep
        self.open_now = open_now
        self.close_seq = None
        self.close_timestep = None
        self.close_now = None
        self.annotations = 0
        self.args = args

    def __repr__(self):
        state = ("open" if self.close_seq is None
                 else "dur=%dfs" % self.duration_fs)
        return "Span(%s %s %s)" % (self.span_id, self.kind, state)

    @property
    def closed(self):
        return self.close_seq is not None

    @property
    def duration_fs(self):
        """Simulated femtoseconds from open to close (None while open)."""
        if self.close_now is None:
            return None
        return self.close_now - self.open_now

    @property
    def duration_timesteps(self):
        """Simulated timesteps from open to close (None while open)."""
        if self.close_timestep is None:
            return None
        return self.close_timestep - self.open_timestep

    def close(self, event):
        """Mark the span closed at *event*'s simulated-time point."""
        self.close_seq = event.seq
        self.close_timestep = event.timestep
        self.close_now = event.now

    def as_dict(self):
        """The span as a plain JSON-serialisable dict."""
        return {
            "span": self.span_id,
            "kind": self.kind,
            "scope": self.scope,
            "open_seq": self.open_seq,
            "open_timestep": self.open_timestep,
            "open_now": self.open_now,
            "close_seq": self.close_seq,
            "close_timestep": self.close_timestep,
            "close_now": self.close_now,
            "duration_fs": self.duration_fs,
            "annotations": self.annotations,
            "args": self.args,
        }


def build_spans(events):
    """Fold a trace-event list into its :class:`Span` records.

    Returns spans in open-order (open event sequence number).  Closes
    for unknown ids are tolerated (a bounded ring may have dropped the
    open); reopening an id closes nothing and starts a fresh span.
    """
    spans = []
    open_spans = {}          # span id -> Span
    for event in events:
        key = event.key
        span_id = event.args.get("span")
        if key == ISR_ENTER:
            _close_irq_spans(open_spans, event)
            continue
        kind = OPEN_EVENTS.get(key)
        if kind is not None and span_id is not None:
            args = {name: value for name, value in event.args.items()
                    if name != "span"}
            span = Span(span_id, kind, event.scope, event.seq,
                        event.timestep, event.now, args)
            spans.append(span)
            open_spans[span_id] = span
            continue
        if span_id is None:
            continue
        span = open_spans.get(span_id)
        if span is None:
            continue
        if key in CLOSE_EVENTS:
            span.close(event)
            del open_spans[span_id]
        else:
            span.annotations += 1
    return spans


def _close_irq_spans(open_spans, event):
    """Close every open interrupt-delivery span this ISR entry serves.

    The interrupt socket carries no correlation id (the wire format is
    the paper's), so the match is structural: same RTOS (the span id's
    scope segment) and same vector.  Coalesced deliveries — several
    posted interrupts dispatched by one ISR entry — close together,
    which is exactly what happened.
    """
    prefix = "irq:%s:" % event.scope
    vector = event.args.get("vector")
    for span_id in [sid for sid, span in open_spans.items()
                    if sid.startswith(prefix)
                    and span.args.get("vector") == vector]:
        open_spans[span_id].close(event)
        del open_spans[span_id]


def spans_from_tracer(tracer):
    """:func:`build_spans` over a tracer's buffered events."""
    return build_spans(tracer.events())


def dump_spans(spans):
    """Canonical byte-stable serialisation: one JSON span per line.

    Same discipline as :func:`repro.obs.tracer.dump_events` — sorted
    keys, fixed separators — so span sets from two runs are directly
    ``==``-comparable as text.
    """
    lines = [json.dumps(span.as_dict(), sort_keys=True,
                        separators=(",", ":"))
             for span in spans]
    return "\n".join(lines) + ("\n" if lines else "")


def perfetto_spans(spans):
    """The spans as Chrome/Perfetto *async-slice* trace-event JSON.

    Each span becomes a ``b``/``e`` async pair keyed by its correlation
    id, with ``ts`` in microseconds of simulated time and one ``tid``
    per scope; still-open spans are emitted as begin-only so stalls are
    visible as unterminated slices.  Load in ``chrome://tracing`` or
    https://ui.perfetto.dev.
    """
    tids = {}
    trace_events = []
    for span in spans:
        tid = tids.setdefault(span.scope or "kernel", len(tids))
        common = {
            "name": span.kind,
            "cat": span.kind,
            "id": span.span_id,
            "pid": 0,
            "tid": tid,
        }
        trace_events.append(dict(
            common, ph="b", ts=span.open_now / 1e9,
            args=dict(span.args, span=span.span_id,
                      open_seq=span.open_seq)))
        if span.closed:
            trace_events.append(dict(
                common, ph="e", ts=span.close_now / 1e9,
                args={"annotations": span.annotations}))
    metadata = [
        {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
         "args": {"name": scope}}
        for scope, tid in tids.items()
    ]
    return {"traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms"}


def perfetto_spans_json(spans):
    """:func:`perfetto_spans` serialised deterministically."""
    return json.dumps(perfetto_spans(spans), sort_keys=True,
                      separators=(",", ":"))


def span_table(spans, limit=None):
    """A plain-text span table (newest *limit* spans)."""
    if limit is not None:
        spans = spans[-limit:] if limit > 0 else []
    lines = ["%-26s %-18s %-14s %9s %9s %5s" % (
        "span", "kind", "scope", "open(ts)", "dur(fs)", "notes")]
    for span in spans:
        duration = ("OPEN" if not span.closed
                    else "%d" % span.duration_fs)
        lines.append("%-26s %-18s %-14s %9d %9s %5d" % (
            span.span_id, span.kind, span.scope, span.open_timestep,
            duration, span.annotations))
    return "\n".join(lines)
