"""Per-scheme profiling layered onto :class:`~repro.cosim.metrics.CosimMetrics`.

A :class:`SchemeProfile` snapshots one run's counters and derives the
per-timestep rates that make the paper's Table 1 comparison legible:
how many synchronisation transactions, cheap polls and driver messages
each scheme pays per unit of simulated time.  :func:`compare_profiles`
renders several profiles side by side — the cross-scheme view described
in ``docs/observability.md``.
"""

from dataclasses import dataclass, field

#: Counters whose per-timestep rate is the interesting number.
RATE_COUNTERS = ("sync_transactions", "cheap_polls",
                 "transfer_transactions", "messages_sent",
                 "messages_received", "interrupts_posted", "iss_cycles")


@dataclass
class SchemeProfile:
    """One run's counters plus derived per-timestep rates."""

    scheme: str
    counters: dict = field(default_factory=dict)
    rates: dict = field(default_factory=dict)       # per sc timestep
    event_counts: dict = field(default_factory=dict)  # from the tracer
    latency: dict = field(default_factory=dict)     # kind -> summary

    @classmethod
    def from_run(cls, metrics, tracer=None):
        """Profile a finished run from its metrics (and tracer)."""
        counters = metrics.as_dict()
        counters.pop("quarantine_log", None)
        counters.pop("per_context", None)  # nested; not a rate source
        timesteps = counters.get("sc_timesteps") or 0
        rates = {}
        for name in RATE_COUNTERS:
            value = counters.get(name, 0)
            rates[name + "_per_timestep"] = (
                round(value / timesteps, 4) if timesteps else 0.0)
        event_counts = dict(sorted(tracer.counts().items())) \
            if tracer is not None else {}
        if tracer is not None:
            counters["trace_dropped"] = tracer.dropped
        return cls(scheme=counters.pop("scheme", ""), counters=counters,
                   rates=rates, event_counts=event_counts,
                   latency=dict(getattr(metrics, "latency", {}) or {}))

    def as_dict(self):
        """The profile as one JSON-serialisable dict."""
        return {
            "scheme": self.scheme,
            "counters": dict(self.counters),
            "rates": dict(self.rates),
            "event_counts": dict(self.event_counts),
            "latency": dict(self.latency),
        }

    def render(self):
        """A short plain-text summary of this profile."""
        lines = ["profile[%s]" % self.scheme]
        if self.counters.get("trace_dropped"):
            lines.append("  WARNING: %d trace event(s) dropped — the "
                         "ring overflowed, figures below are incomplete"
                         % self.counters["trace_dropped"])
        for name in sorted(self.counters):
            value = self.counters[name]
            if isinstance(value, (int, float)) and value:
                lines.append("  %-24s %12s" % (name, value))
        for name in sorted(self.rates):
            if self.rates[name]:
                lines.append("  %-24s %12.4f" % (name, self.rates[name]))
        for kind in sorted(self.latency):
            summary = self.latency[kind]
            if summary.get("count"):
                lines.append(
                    "  latency[%s]: n=%d p50=%dfs p90=%dfs max=%dfs"
                    % (kind, summary["count"], summary["p50"],
                       summary["p90"], summary["max"]))
        return "\n".join(lines)


def compare_profiles(profiles):
    """Render *profiles* side by side, one counter per row.

    Returns a plain-text table whose columns are schemes — the
    cross-scheme comparison view (sync cost per timestep is the row
    that reproduces the paper's Table 1 argument).
    """
    profiles = list(profiles)
    names = []
    for profile in profiles:
        for name in list(profile.counters) + list(profile.rates):
            if name not in names:
                names.append(name)
    header = ["%-28s" % "counter"] + ["%16s" % p.scheme for p in profiles]
    lines = ["".join(header)]
    for name in names:
        values = []
        interesting = False
        for profile in profiles:
            value = profile.counters.get(name, profile.rates.get(name, 0))
            if isinstance(value, float):
                text = "%.4f" % value
            else:
                text = str(value)
            if value:
                interesting = True
            values.append("%16s" % text)
        if interesting:
            lines.append("".join(["%-28s" % name] + values))
    return "\n".join(lines)
