"""Per-quantum telemetry time-series (docs/observability.md).

The tracer and BENCH records answer *what happened over the whole
run*; this module answers *what was happening at each committed
quantum boundary*.  A :class:`MetricsSampler` attaches to the SystemC
kernel as a trace sink (``Kernel.add_trace``), so it is sampled at
every timestep — after the scheduler hooks have run, which is exactly
where the parallel dispatcher has already committed its quantum — and
appends one :class:`MetricsPoint` to a bounded sim-time-indexed ring
whenever the co-simulation made *sync progress* since the last point.

Determinism contract: a point carries only counters derived from
simulation state (:class:`~repro.cosim.metrics.CosimMetrics` totals,
the per-CPU tier counters, the DMI warp counters, the tracer's drop
count), and the sampling gate is itself a function of those counters —
so two runs of the same seeded scenario, serial or parallel, thread or
process backend, produce byte-identical series
(``tests/obs/test_telemetry_identity.py`` asserts this across
scheme x quantum x tier).  Checkpoints serialize the series through
:meth:`MetricsSeries.state` and replay regenerates it identically.

The module also renders any flat counter mapping in the Prometheus
text exposition format (``repro metrics --format prom``), so the
series doubles as a scrape surface for the ROADMAP item-1 session
server.
"""

from collections import deque

#: Default ring capacity: at one point per committed quantum this
#: covers hours of the pinned scenarios; eviction is counted, never
#: silent.
DEFAULT_SERIES_CAPACITY = 4096

#: Counters folded directly from the CPUs at sample time (the shared
#: metrics fields for these lag until ``fold_cpu_counters`` runs).
CPU_COUNTERS = (
    "blocks_compiled", "block_hits", "block_invalidations",
    "superblocks_compiled", "superblock_exits",
    "superblock_invalidations", "superblock_side_exits")

#: The warp counters summed over every context's ClockBinding.
WARP_COUNTERS = ("warped_syncs", "warped_cycles", "warped_steps")

#: The counters appended after the CosimMetrics numeric fields.
_EXTRA_COUNTERS = ("trace_dropped",) + WARP_COUNTERS


def sampled_counters():
    """The fixed counter order of every series point: the CosimMetrics
    numeric fields, then the tracer drop count, then the warp sums.

    Resolved lazily (``repro.cosim`` imports the SystemC kernel, which
    imports :mod:`repro.obs.tracer` — an eager import here would close
    that cycle); also exposed as the module attribute
    ``SAMPLED_COUNTERS`` via :pep:`562`.
    """
    from repro.cosim.metrics import CosimMetrics
    return CosimMetrics._NUMERIC_FIELDS + _EXTRA_COUNTERS


def __getattr__(name):
    if name == "SAMPLED_COUNTERS":
        return sampled_counters()
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))

#: Exposition names that are instantaneous readings, not cumulative
#: counters (everything in SAMPLED_COUNTERS is cumulative).
GAUGE_NAMES = frozenset(("sim_now_fs", "timestep", "points",
                         "points_evicted"))


class MetricsPoint:
    """One telemetry sample: sim-time index plus the counter tuple."""

    __slots__ = ("now", "timestep", "values")

    def __init__(self, now, timestep, values):
        self.now = now
        self.timestep = timestep
        self.values = values

    def __repr__(self):
        return "MetricsPoint(now=%d, timestep=%d)" % (self.now,
                                                      self.timestep)

    def as_list(self):
        """The point as plain JSON types: ``[now, timestep, [...]]``."""
        return [self.now, self.timestep, list(self.values)]


class MetricsSeries:
    """A bounded ring of :class:`MetricsPoint` samples.

    The counter order is fixed at construction (and serialized with
    the state image), so a point's ``values`` tuple and the series'
    canonical dump are byte-stable across runs and code that only
    *appends* counters.
    """

    def __init__(self, counters=None, capacity=DEFAULT_SERIES_CAPACITY):
        if counters is None:
            counters = sampled_counters()
        self.counters = tuple(counters)
        self.capacity = capacity
        self._points = deque(maxlen=capacity if capacity else 1)
        self._index = {name: position for position, name
                       in enumerate(self.counters)}
        self.evicted = 0

    def __len__(self):
        return len(self._points)

    def append(self, now, timestep, values):
        """Append one sample; evictions at capacity are counted."""
        if len(self._points) == self._points.maxlen:
            self.evicted += 1
        point = MetricsPoint(now, timestep, tuple(values))
        self._points.append(point)
        return point

    def points(self):
        """All buffered points, oldest first."""
        return list(self._points)

    def latest(self):
        """The newest point, or None on an empty series."""
        return self._points[-1] if self._points else None

    def value(self, name):
        """The newest sampled value of counter *name* (0 when empty)."""
        point = self.latest()
        if point is None:
            return 0
        return point.values[self._index[name]]

    def window(self, count):
        """The newest *count* points, oldest first."""
        if count <= 0:
            return []
        points = self._points
        if count >= len(points):
            return list(points)
        return list(points)[-count:]

    def rates(self, window):
        """Per-point counter deltas over the newest *window* points.

        Returns ``{counter: (last - first) / (points - 1)}`` — e.g.
        retransmits per committed quantum — or ``{}`` when fewer than
        two points exist.  The windowed health rules
        (:func:`repro.obs.health.analyze_series`) evaluate these.
        """
        points = self.window(window)
        if len(points) < 2:
            return {}
        span = len(points) - 1
        first, last = points[0].values, points[-1].values
        return {name: (last[position] - first[position]) / span
                for position, name in enumerate(self.counters)}

    def latest_sample(self):
        """The newest point as a flat ``{name: value}`` mapping.

        Includes the sim-time index under ``sim_now_fs``/``timestep``
        and the ring accounting, so the mapping is directly
        renderable by :func:`prometheus_text` or ``repro top``.
        """
        point = self.latest()
        if point is None:
            return None
        sample = dict(zip(self.counters, point.values))
        sample["sim_now_fs"] = point.now
        sample["timestep"] = point.timestep
        sample["points"] = len(self._points)
        sample["points_evicted"] = self.evicted
        return sample

    def state(self):
        """Checkpoint-stable plain-JSON image of the whole series."""
        return {
            "counters": list(self.counters),
            "capacity": self.capacity,
            "evicted": self.evicted,
            "points": [point.as_list() for point in self._points],
        }

    def dump(self):
        """Canonical byte-stable JSON of :meth:`state`.

        The serial-vs-parallel identity tests compare these strings
        directly.
        """
        import json
        return json.dumps(self.state(), sort_keys=True,
                          separators=(",", ":"))

    def to_ndjson_lines(self):
        """One canonical JSON object per point (streaming export)."""
        import json
        lines = []
        for point in self._points:
            record = dict(zip(self.counters, point.values))
            record["sim_now_fs"] = point.now
            record["timestep"] = point.timestep
            lines.append(json.dumps(record, sort_keys=True,
                                    separators=(",", ":")))
        return lines


class MetricsSampler:
    """The kernel trace sink feeding a :class:`MetricsSeries`.

    Sampled by ``Kernel._advance_time`` after every hook has run, so a
    parallel run's quantum commit is always complete when the sample
    is taken.  A point is recorded only when the *sync progress*
    composite — quantum syncs, sync transactions, grants and
    Driver-Kernel messages — moved since the last point: idle
    timesteps (and the local scheme, which has none of this traffic)
    produce no points, which keeps the series per-quantum rather than
    per-timestep and its cost off the no-progress fast path.
    """

    def __init__(self, system, capacity=DEFAULT_SERIES_CAPACITY):
        self.system = system
        self.metrics = system.metrics
        self.series = MetricsSeries(capacity=capacity)
        # Starts at the no-progress composite so a run's first point
        # lands at the first timestep that actually synced, never at
        # t=0 with all-zero counters.
        self._last_progress = 0
        self._bus = None

    def attach_bus(self, bus):
        """Publish every new point as a ``metrics`` bus event."""
        self._bus = bus
        return bus

    def _progress(self):
        metrics = self.metrics
        return (metrics.quantum_syncs + metrics.sync_transactions
                + metrics.grants + metrics.messages_sent
                + metrics.messages_received)

    def sample(self, kernel):
        """Record one point if sync progress was made; returns it."""
        progress = self._progress()
        if progress == self._last_progress:
            return None
        self._last_progress = progress
        point = self.series.append(kernel.now, kernel.timestep_count,
                                   self._values())
        bus = self._bus
        if bus is not None:
            payload = dict(zip(self.series.counters, point.values))
            payload["sim_now_fs"] = point.now
            payload["timestep"] = point.timestep
            bus.publish("metrics", payload)
        return point

    def _values(self):
        """The counter tuple, in :data:`SAMPLED_COUNTERS` order.

        CPU tier counters are summed straight off the CPUs (the
        shared-metrics copies lag until the next fold) and warp
        counters off the bindings; both are synced to the master
        before the kernel runs its sinks, so the values are committed
        state under every backend.
        """
        system = self.system
        metrics = self.metrics
        cpu_sums = dict.fromkeys(CPU_COUNTERS, 0)
        for cpu in system.cpus:
            for name in CPU_COUNTERS:
                cpu_sums[name] += getattr(cpu, name)
        warp_sums = dict.fromkeys(WARP_COUNTERS, 0)
        for __, binding in system.bindings():
            warp_sums["warped_syncs"] += binding.warped_syncs
            warp_sums["warped_cycles"] += binding.warped_cycles
            warp_sums["warped_steps"] += binding.warped_steps
        dropped = system.tracer.dropped
        values = []
        for name in self.series.counters:
            if name in cpu_sums:
                values.append(cpu_sums[name])
            elif name in warp_sums:
                values.append(warp_sums[name])
            elif name == "trace_dropped":
                values.append(dropped)
            else:
                values.append(getattr(metrics, name))
        return values


def _prom_escape(value):
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _prom_name(name, prefix):
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_"
                      for ch in name)
    return "%s_%s" % (prefix, cleaned)


def prometheus_text(sample, labels=None, prefix="repro"):
    """Render a flat ``{name: number}`` mapping as Prometheus text.

    One ``# TYPE`` line per metric (``counter`` for the cumulative
    simulation counters, ``gauge`` for the :data:`GAUGE_NAMES`
    readings), names prefixed and sanitized, label sets sorted — the
    output is byte-stable for identical samples.  Non-numeric values
    are skipped.
    """
    label_text = ""
    if labels:
        label_text = "{%s}" % ",".join(
            '%s="%s"' % (key, _prom_escape(value))
            for key, value in sorted(labels.items()))
    lines = []
    for name in sorted(sample):
        value = sample[name]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            continue
        metric = _prom_name(name, prefix)
        kind = "gauge" if name in GAUGE_NAMES else "counter"
        lines.append("# TYPE %s %s" % (metric, kind))
        rendered = "%d" % value if isinstance(value, int) else repr(value)
        lines.append("%s%s %s" % (metric, label_text, rendered))
    return "\n".join(lines) + ("\n" if lines else "")
