"""Machine-readable benchmark reporting (``BENCH_<name>.json``).

Every benchmark run writes one JSON file conforming to the
``repro-bench/1`` schema (documented in ``docs/observability.md``):

- deterministic fields — ``counters`` (simulated timesteps, sync
  messages, scheme counters…) and ``config`` — are identical across
  repeated seeded runs, which the determinism tests assert;
- host-dependent fields live exclusively under the ``wall`` object
  (seconds, events/sec) so consumers can diff everything else.

:class:`BenchReporter` owns an output directory and writes
:class:`BenchRun` records; the ``benchmarks/conftest.py`` fixture wraps
every benchmark test in one, and ``repro bench`` produces them from the
command line.
"""

import json
import os
import re
import time
from dataclasses import dataclass, field

SCHEMA = "repro-bench/1"

#: Environment variable overriding the reporter output directory.
OUTPUT_DIR_ENV = "REPRO_BENCH_DIR"

#: Where records land when neither a directory argument nor the
#: environment override names one.  A real directory (not ``"."``) so
#: a benchmark run from the repository root never strands ``BENCH_*``
#: artifacts next to tracked files.
DEFAULT_OUTPUT_DIR = os.path.join("benchmarks", "out")


def sanitize_name(name):
    """Collapse a test/scenario id into a safe file-name fragment."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_")


@dataclass
class BenchRun:
    """One benchmark result being assembled."""

    name: str
    counters: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    # Extra host-dependent entries merged into the ``wall`` object
    # (e.g. parallel-dispatcher utilization and stall counters).
    wall_extra: dict = field(default_factory=dict)
    # The ``profile`` section: deterministic execution-profile data
    # (e.g. ``hot_blocks``) that is informative rather than gated —
    # compare_reports only examines ``counters``.
    profile: dict = field(default_factory=dict)
    _start: float = None

    def start(self):
        """Start (or restart) the wall clock; returns self."""
        self._start = time.perf_counter()
        return self

    def stop(self):
        """Stop the wall clock, accumulating into :attr:`wall_seconds`."""
        if self._start is not None:
            self.wall_seconds += time.perf_counter() - self._start
            self._start = None
        return self.wall_seconds

    def record(self, **counters):
        """Merge deterministic counters into the record."""
        self.counters.update(counters)

    def record_metrics(self, metrics):
        """Merge a :class:`~repro.cosim.metrics.CosimMetrics` bundle."""
        counters = metrics.as_dict()
        counters.pop("quarantine_log", None)
        counters.pop("per_context", None)  # nested; repro-bench/1 is flat
        scheme = counters.pop("scheme", "")
        if scheme:
            self.config.setdefault("scheme", scheme)
        self.record(**counters)

    def as_dict(self):
        """The finished record in ``repro-bench/1`` shape."""
        events = self.counters.get("trace_events", 0)
        timesteps = self.counters.get("sc_timesteps", 0)
        wall = {"seconds": round(self.wall_seconds, 6)}
        if self.wall_seconds > 0:
            if events:
                wall["events_per_sec"] = round(events / self.wall_seconds, 1)
            if timesteps:
                wall["timesteps_per_sec"] = round(
                    timesteps / self.wall_seconds, 1)
        wall.update(self.wall_extra)
        return {
            "schema": SCHEMA,
            "name": self.name,
            "config": dict(self.config),
            "counters": dict(self.counters),
            "profile": dict(self.profile),
            "wall": wall,
        }


class BenchReporter:
    """Writes ``BENCH_<name>.json`` files into one directory."""

    def __init__(self, directory=None):
        if directory is None:
            directory = (os.environ.get(OUTPUT_DIR_ENV)
                         or DEFAULT_OUTPUT_DIR)
        self.directory = directory
        self.written = []

    def open_run(self, name):
        """A new :class:`BenchRun` with its wall clock started."""
        return BenchRun(name=sanitize_name(name)).start()

    def path_for(self, run):
        """The output path *run* will be written to."""
        return os.path.join(self.directory, "BENCH_%s.json" % run.name)

    def write(self, run):
        """Finalise *run* and write its JSON file; returns the path."""
        run.stop()
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(run)
        with open(path, "w") as handle:
            json.dump(run.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.written.append(path)
        return path


def load_report(path):
    """Read one ``BENCH_*.json`` file back, validating its schema tag."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        raise ValueError("%s: unknown bench schema %r"
                         % (path, data.get("schema")))
    return data


def syncs_per_timestep(report):
    """Synchronisation round trips per SystemC timestep in *report*.

    Counts every cross-engine transaction a scheme performs — RSP sync
    and transfer exchanges, budget grant+drive round trips, and
    Driver-Kernel data messages — divided by the timesteps simulated.
    This is the deterministic figure the regression gate tracks: it
    moves when a change adds or removes round trips, and is immune to
    host speed.
    """
    counters = report.get("counters", {})
    timesteps = counters.get("sc_timesteps", 0)
    if not timesteps:
        return 0.0
    syncs = (counters.get("sync_transactions", 0)
             + counters.get("transfer_transactions", 0)
             + counters.get("grants", 0)
             + counters.get("messages_sent", 0)
             + counters.get("messages_received", 0))
    return syncs / timesteps


def compare_reports(current, baseline, tolerance=0.10):
    """Gate *current* against *baseline* (both ``repro-bench/1`` dicts).

    Returns a list of human-readable regression strings — empty when
    the gate passes.  Only deterministic counters are compared:

    - ``syncs_per_timestep`` may not exceed the baseline by more than
      *tolerance* (the CI failure condition);
    - ``instructions_per_sync`` is reported informationally when it
      drops by more than *tolerance* (more syncs for the same work).
    """
    problems = []
    current_spt = syncs_per_timestep(current)
    baseline_spt = syncs_per_timestep(baseline)
    if baseline_spt > 0 and current_spt > baseline_spt * (1.0 + tolerance):
        problems.append(
            "syncs-per-timestep regressed: %.4f -> %.4f (>%d%% over baseline)"
            % (baseline_spt, current_spt, round(tolerance * 100)))
    cur_counters = current.get("counters", {})
    base_counters = baseline.get("counters", {})
    cur_instr = cur_counters.get("iss_instructions", 0)
    base_instr = base_counters.get("iss_instructions", 0)
    cur_syncs = cur_counters.get("quantum_syncs", 0) or \
        cur_counters.get("sc_timesteps", 0)
    base_syncs = base_counters.get("quantum_syncs", 0) or \
        base_counters.get("sc_timesteps", 0)
    if base_syncs and cur_syncs and base_instr:
        cur_ips = cur_instr / cur_syncs
        base_ips = base_instr / base_syncs
        if cur_ips < base_ips * (1.0 - tolerance):
            problems.append(
                "instructions-per-sync dropped: %.1f -> %.1f"
                % (base_ips, cur_ips))
    return problems
