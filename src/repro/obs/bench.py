"""Machine-readable benchmark reporting (``BENCH_<name>.json``).

Every benchmark run writes one JSON file conforming to the
``repro-bench/1`` schema (documented in ``docs/observability.md``):

- deterministic fields — ``counters`` (simulated timesteps, sync
  messages, scheme counters…) and ``config`` — are identical across
  repeated seeded runs, which the determinism tests assert;
- host-dependent fields live exclusively under the ``wall`` object
  (seconds, events/sec) so consumers can diff everything else.

:class:`BenchReporter` owns an output directory and writes
:class:`BenchRun` records; the ``benchmarks/conftest.py`` fixture wraps
every benchmark test in one, and ``repro bench`` produces them from the
command line.
"""

import json
import os
import re
import time
from dataclasses import dataclass, field

SCHEMA = "repro-bench/1"

#: Environment variable overriding the reporter output directory.
OUTPUT_DIR_ENV = "REPRO_BENCH_DIR"


def sanitize_name(name):
    """Collapse a test/scenario id into a safe file-name fragment."""
    return re.sub(r"[^A-Za-z0-9._-]+", "_", name).strip("_")


@dataclass
class BenchRun:
    """One benchmark result being assembled."""

    name: str
    counters: dict = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    _start: float = None

    def start(self):
        """Start (or restart) the wall clock; returns self."""
        self._start = time.perf_counter()
        return self

    def stop(self):
        """Stop the wall clock, accumulating into :attr:`wall_seconds`."""
        if self._start is not None:
            self.wall_seconds += time.perf_counter() - self._start
            self._start = None
        return self.wall_seconds

    def record(self, **counters):
        """Merge deterministic counters into the record."""
        self.counters.update(counters)

    def record_metrics(self, metrics):
        """Merge a :class:`~repro.cosim.metrics.CosimMetrics` bundle."""
        counters = metrics.as_dict()
        counters.pop("quarantine_log", None)
        scheme = counters.pop("scheme", "")
        if scheme:
            self.config.setdefault("scheme", scheme)
        self.record(**counters)

    def as_dict(self):
        """The finished record in ``repro-bench/1`` shape."""
        events = self.counters.get("trace_events", 0)
        timesteps = self.counters.get("sc_timesteps", 0)
        wall = {"seconds": round(self.wall_seconds, 6)}
        if self.wall_seconds > 0:
            if events:
                wall["events_per_sec"] = round(events / self.wall_seconds, 1)
            if timesteps:
                wall["timesteps_per_sec"] = round(
                    timesteps / self.wall_seconds, 1)
        return {
            "schema": SCHEMA,
            "name": self.name,
            "config": dict(self.config),
            "counters": dict(self.counters),
            "wall": wall,
        }


class BenchReporter:
    """Writes ``BENCH_<name>.json`` files into one directory."""

    def __init__(self, directory=None):
        if directory is None:
            directory = os.environ.get(OUTPUT_DIR_ENV) or "."
        self.directory = directory
        self.written = []

    def open_run(self, name):
        """A new :class:`BenchRun` with its wall clock started."""
        return BenchRun(name=sanitize_name(name)).start()

    def path_for(self, run):
        """The output path *run* will be written to."""
        return os.path.join(self.directory, "BENCH_%s.json" % run.name)

    def write(self, run):
        """Finalise *run* and write its JSON file; returns the path."""
        run.stop()
        os.makedirs(self.directory, exist_ok=True)
        path = self.path_for(run)
        with open(path, "w") as handle:
            json.dump(run.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        self.written.append(path)
        return path


def load_report(path):
    """Read one ``BENCH_*.json`` file back, validating its schema tag."""
    with open(path) as handle:
        data = json.load(handle)
    if data.get("schema") != SCHEMA:
        raise ValueError("%s: unknown bench schema %r"
                         % (path, data.get("schema")))
    return data
