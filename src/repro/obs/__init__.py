"""Observability: structured tracing, profiling and bench reporting.

The paper's whole argument is comparative *measurement* — where does
co-simulation time go under each scheme?  This package makes that
visible without perturbing it:

- :mod:`repro.obs.tracer` — an opt-in, ring-buffered, deterministic
  structured-event tracer wired through the SystemC kernel, the ISS,
  all three co-simulation schemes and the reliable transport;
- :mod:`repro.obs.profile` — per-scheme counter aggregation layered
  onto :class:`~repro.cosim.metrics.CosimMetrics`, with derived
  per-timestep rates for cross-scheme comparison;
- :mod:`repro.obs.bench` — a machine-readable benchmark reporter
  writing ``BENCH_<name>.json`` files conforming to the
  ``repro-bench/1`` schema (see ``docs/observability.md``);
- :mod:`repro.obs.scenarios` — small deterministic traced scenarios
  (the router case study at quickstart scale) shared by the golden
  trace tests and the ``repro trace`` / ``repro bench`` CLI commands.

Tracing is off by default and costs one attribute check when disabled:
every instrumented hot path is guarded by ``if tracer.enabled:`` so no
event object or argument dict is ever built for a disabled tracer.
"""

from repro.obs.bench import BenchReporter, BenchRun
from repro.obs.profile import SchemeProfile, compare_profiles
from repro.obs.tracer import NULL_TRACER, TraceEvent, Tracer, dump_events

__all__ = [
    "BenchReporter",
    "BenchRun",
    "NULL_TRACER",
    "SchemeProfile",
    "TraceEvent",
    "Tracer",
    "compare_profiles",
    "dump_events",
]
