"""Observability: structured tracing, profiling and bench reporting.

The paper's whole argument is comparative *measurement* — where does
co-simulation time go under each scheme?  This package makes that
visible without perturbing it:

- :mod:`repro.obs.tracer` — an opt-in, ring-buffered, deterministic
  structured-event tracer wired through the SystemC kernel, the ISS,
  all three co-simulation schemes and the reliable transport;
- :mod:`repro.obs.profile` — per-scheme counter aggregation layered
  onto :class:`~repro.cosim.metrics.CosimMetrics`, with derived
  per-timestep rates for cross-scheme comparison;
- :mod:`repro.obs.bench` — a machine-readable benchmark reporter
  writing ``BENCH_<name>.json`` files conforming to the
  ``repro-bench/1`` schema (see ``docs/observability.md``);
- :mod:`repro.obs.scenarios` — small deterministic traced scenarios
  (the router case study at quickstart scale) shared by the golden
  trace tests and the ``repro trace`` / ``repro bench`` CLI commands;
- :mod:`repro.obs.spans` — causal transaction spans reconstructed from
  the correlation ids every cross-boundary event carries (breakpoint
  syncs, driver round trips, interrupt deliveries, transport frames,
  parallel dispatch windows), with Perfetto async-slice export;
- :mod:`repro.obs.hist` — deterministic sim-time latency histograms
  over closed spans, feeding ``latency.*`` BENCH counters;
- :mod:`repro.obs.health` — a rule-based analyzer (stalled spans,
  retransmission storms, quarantines, hold hot spots, latency
  regressions, windowed telemetry rates) with a CI-friendly exit
  code, behind ``repro health``;
- :mod:`repro.obs.metrics` — the per-quantum telemetry time-series: a
  deterministic kernel-sink sampler feeding a bounded
  sim-time-indexed ring, with NDJSON and Prometheus text exposition
  (``repro metrics`` / ``repro top``);
- :mod:`repro.obs.attrib` — wall-time attribution: an
  injectable-clock profiler bucketing exclusive time per layer
  (per-tier ISS, scheme transport, kernel residual, commit stalls),
  folded into BENCH ``wall_extra`` as ``attrib.*``;
- :mod:`repro.obs.stream_bus` — the live subscription bus publishing
  trace/metrics/health events mid-run to NDJSON or callback sinks.

Tracing is off by default and costs one attribute check when disabled:
every instrumented hot path is guarded by ``if tracer.enabled:`` so no
event object or argument dict is ever built for a disabled tracer.
"""

from repro.obs.attrib import (AttributionProfiler, attach_attrib,
                              attrib_summary, side_exit_profile)
from repro.obs.bench import BenchReporter, BenchRun
from repro.obs.health import (Finding, HealthReport, HealthThresholds,
                              analyze_records, analyze_run,
                              analyze_series)
from repro.obs.hist import (LatencyHistogram, build_histograms,
                            latency_counters, latency_summaries)
from repro.obs.metrics import (MetricsPoint, MetricsSampler,
                               MetricsSeries, prometheus_text,
                               sampled_counters)
from repro.obs.profile import SchemeProfile, compare_profiles
from repro.obs.spans import (Span, build_spans, dump_spans,
                             perfetto_spans, spans_from_tracer)
from repro.obs.stream_bus import (CallbackSink, NdjsonSink, StreamBus,
                                  StreamHealthMonitor, attach_stream,
                                  publish_report)
from repro.obs.tracer import (NULL_TRACER, TraceEvent, Tracer,
                              dump_events, strip_header, trace_header)

__all__ = [
    "AttributionProfiler",
    "BenchReporter",
    "BenchRun",
    "CallbackSink",
    "Finding",
    "HealthReport",
    "HealthThresholds",
    "LatencyHistogram",
    "MetricsPoint",
    "MetricsSampler",
    "MetricsSeries",
    "NULL_TRACER",
    "NdjsonSink",
    "SchemeProfile",
    "Span",
    "StreamBus",
    "StreamHealthMonitor",
    "TraceEvent",
    "Tracer",
    "analyze_records",
    "analyze_run",
    "analyze_series",
    "attach_attrib",
    "attach_stream",
    "attrib_summary",
    "build_histograms",
    "build_spans",
    "compare_profiles",
    "dump_events",
    "dump_spans",
    "latency_counters",
    "latency_summaries",
    "perfetto_spans",
    "prometheus_text",
    "publish_report",
    "sampled_counters",
    "side_exit_profile",
    "spans_from_tracer",
    "strip_header",
    "trace_header",
]
