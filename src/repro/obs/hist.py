"""Deterministic, sim-time-denominated latency histograms.

Span durations (:mod:`repro.obs.spans`) are integers in *femtoseconds
of simulated time*, so their distribution is an exact, reproducible
property of a seeded scenario — unlike wall-clock latencies.  This
module aggregates them into fixed-bucket histograms with exact counts
and nearest-rank percentiles (always an observed value, never an
interpolation), which is what lands in BENCH records as flat integer
``latency.*`` counters and in :class:`~repro.cosim.metrics.CosimMetrics`
as the ``latency`` summary attachment.
"""

#: Geometric bucket upper bounds in femtoseconds (2^10 .. 2^60, x4
#: per bucket).  Fixed at import time: two runs always bucket a given
#: duration identically, and histograms from different runs align.
BUCKET_BOUNDS_FS = tuple(2 ** exponent for exponent in range(10, 61, 2))

#: The span kinds whose latency distributions BENCH records carry.
LATENCY_KINDS = ("breakpoint_sync", "driver_round_trip",
                 "interrupt_delivery")


class LatencyHistogram:
    """Fixed-bucket histogram of integer sim-time durations.

    Raw values are retained (spans per run number in the thousands at
    most) so percentiles are exact nearest-rank statistics; the bucket
    counts serve rendering and cross-run comparison.
    """

    def __init__(self, kind, bounds=BUCKET_BOUNDS_FS):
        self.kind = kind
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.values = []

    def __len__(self):
        return len(self.values)

    def add(self, duration_fs):
        """Count one closed-span duration."""
        self.values.append(duration_fs)
        for index, bound in enumerate(self.bounds):
            if duration_fs <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def count(self):
        return len(self.values)

    @property
    def max(self):
        return max(self.values) if self.values else 0

    @property
    def total(self):
        return sum(self.values)

    def percentile(self, fraction):
        """Exact nearest-rank percentile (``fraction`` in (0, 1])."""
        if not self.values:
            return 0
        ordered = sorted(self.values)
        rank = max(1, -(-int(fraction * 100) * len(ordered) // 100))
        return ordered[min(rank, len(ordered)) - 1]

    def summary(self):
        """The ``{count, p50, p90, max}`` integer summary."""
        return {
            "count": self.count,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "max": self.max,
        }

    def as_dict(self):
        """Summary plus the non-empty buckets, JSON-serialisable."""
        buckets = {}
        for index, count in enumerate(self.counts):
            if not count:
                continue
            label = ("inf" if index == len(self.bounds)
                     else str(self.bounds[index]))
            buckets[label] = count
        return dict(self.summary(), kind=self.kind, buckets=buckets)


def build_histograms(spans, kinds=LATENCY_KINDS):
    """``{kind: LatencyHistogram}`` over the closed spans of *kinds*.

    Every requested kind is present (possibly empty) so downstream
    records keep a stable key set across schemes — a GDB-scheme run
    simply reports zero driver round trips.
    """
    histograms = {kind: LatencyHistogram(kind) for kind in kinds}
    for span in spans:
        histogram = histograms.get(span.kind)
        if histogram is not None and span.closed:
            histogram.add(span.duration_fs)
    return histograms


def latency_summaries(histograms):
    """``{kind: {count,p50,p90,max}}`` for metrics attachment."""
    return {kind: histogram.summary()
            for kind, histogram in sorted(histograms.items())}


def latency_counters(histograms):
    """The histograms as flat integer BENCH counters.

    Keys are ``latency.<kind>.<stat>``; all values are deterministic
    integers in femtoseconds of simulated time (counts excepted), so
    they ride in the ``counters`` object of ``repro-bench/1`` records
    without weakening the byte-stability guarantee.
    """
    counters = {}
    for kind, histogram in sorted(histograms.items()):
        for stat, value in sorted(histogram.summary().items()):
            counters["latency.%s.%s" % (kind, stat)] = value
    return counters
