"""A low-overhead, deterministic, ring-buffered structured-event tracer.

Every instrumented component emits :class:`TraceEvent` records through a
shared :class:`Tracer`.  Event *ordering* derives exclusively from
simulation state — the kernel's timestep/delta counters and a per-tracer
emission sequence number — never from the wall clock, so two runs of the
same seeded scenario produce byte-identical traces and traces are
directly comparable across the three co-simulation schemes.

Cost discipline (the overhead-guard test enforces this):

- *disabled* (the default, and the :data:`NULL_TRACER` singleton): hot
  paths check ``tracer.enabled`` and skip the call entirely — no event
  object, no argument dict, no string formatting;
- *enabled*: one small object append into a bounded ``deque``; when the
  ring is full the oldest event is discarded and counted in
  :attr:`Tracer.dropped`.

Exports: a list of structured dicts (:meth:`Tracer.to_jsonable`), the
canonical one-event-per-line JSON used by the golden-trace tests
(:func:`dump_events`), Chrome ``chrome://tracing`` /Perfetto trace-event
JSON (:meth:`Tracer.chrome_trace`), and a human-readable plain-text
timeline (:meth:`Tracer.timeline`).
"""

import json
import threading
import warnings
from collections import Counter, deque

#: Schema marker of the optional trace metadata header line.
TRACE_HEADER_KEY = "repro-trace"
TRACE_HEADER_VERSION = "1"


class TraceEvent:
    """One structured trace event.

    Fields: *seq* (per-tracer emission index, total order), *timestep*
    /*delta*/*now* (the bound kernel's counters at emission time),
    *category*/*name* (what happened), *scope* (which component), and
    *args* (event-specific deterministic details).
    """

    __slots__ = ("seq", "timestep", "delta", "now", "category", "name",
                 "scope", "args")

    def __init__(self, seq, timestep, delta, now, category, name, scope,
                 args):
        self.seq = seq
        self.timestep = timestep
        self.delta = delta
        self.now = now
        self.category = category
        self.name = name
        self.scope = scope
        self.args = args

    def __repr__(self):
        return "TraceEvent(#%d t%d %s/%s %s)" % (
            self.seq, self.timestep, self.category, self.name, self.scope)

    @property
    def key(self):
        """The ``category/name`` aggregation key."""
        return "%s/%s" % (self.category, self.name)

    def as_dict(self):
        """The event as a plain JSON-serialisable dict."""
        return {
            "seq": self.seq,
            "timestep": self.timestep,
            "delta": self.delta,
            "now": self.now,
            "category": self.category,
            "name": self.name,
            "scope": self.scope,
            "args": self.args,
        }


def dump_events(events, dropped=0):
    """Canonical byte-stable serialisation: one JSON event per line.

    This exact format is what the golden-trace regression tests snapshot
    (``tests/obs/golden/*.json``) and what two seeded runs must replay
    byte-for-byte.  Keys are sorted and separators fixed so the output
    depends only on event content.

    *dropped* is the emitting tracer's overflow count: a truncated
    trace is not the deterministic artifact callers think it is, so a
    non-zero count raises a loud :class:`UserWarning` instead of
    silently serialising the surviving suffix.
    """
    if dropped:
        warnings.warn(
            "trace ring overflowed: %d event(s) dropped — the dump is "
            "truncated and must not be compared against goldens "
            "(raise the tracer capacity)" % dropped)
    lines = [json.dumps(event.as_dict(), sort_keys=True,
                        separators=(",", ":"))
             for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def trace_header(**fields):
    """One canonical-JSON metadata line identifying a trace dump.

    The returned line (no trailing newline) carries the
    ``repro-trace`` schema marker plus the caller's *fields* (scheme,
    seed, sim_us, quantum, version...).  Prepend it to a
    :func:`dump_events` body; :func:`strip_header` removes it again
    for consumers that want only events (golden comparison).
    """
    header = {TRACE_HEADER_KEY: TRACE_HEADER_VERSION}
    header.update(fields)
    return json.dumps(header, sort_keys=True, separators=(",", ":"))


def strip_header(text):
    """Drop a leading :func:`trace_header` line from *text*, if any."""
    if not text:
        return text
    first, newline, rest = text.partition("\n")
    try:
        parsed = json.loads(first)
    except ValueError:
        return text
    if isinstance(parsed, dict) and TRACE_HEADER_KEY in parsed:
        return rest
    return text


class TraceBuffer:
    """A deferred-event sink for parallel prefetch phases.

    Emissions from a pool worker must not touch the shared ring (their
    interleaving would depend on host scheduling), so the dispatcher
    redirects the worker's thread into one of these.  Only the
    deterministic payload is captured — the sequence number and
    simulated-time fields are assigned when the buffer is
    :meth:`replayed <Tracer.replay>` into the main tracer at the
    quantum-boundary commit, in context-attach order.
    """

    __slots__ = ("enabled", "pending")

    def __init__(self):
        self.enabled = True
        self.pending = []

    def __len__(self):
        return len(self.pending)

    def emit(self, category, name, scope="", **args):
        """Record one deferred event payload."""
        self.pending.append((category, name, scope, args))

    def drain(self):
        """Hand over the buffered payloads and clear the buffer."""
        pending, self.pending = self.pending, []
        return pending


class Tracer:
    """Ring-buffered structured-event collector.

    Construct enabled (``Tracer()``) and attach it to a kernel with
    :meth:`~repro.sysc.kernel.Kernel.attach_tracer` *before* building a
    co-simulation scheme, so every layer picks it up.  The kernel
    binding supplies the simulated-time fields of each event.
    """

    def __init__(self, capacity=100_000, enabled=True):
        self.enabled = enabled
        self.capacity = capacity
        self._events = deque(maxlen=capacity if capacity else 1)
        self._seq = 0
        self._kernel = None
        self._redirects = threading.local()
        self._taps = []
        self.dropped = 0

    def __repr__(self):
        return "Tracer(enabled=%r, events=%d)" % (self.enabled,
                                                  len(self._events))

    def __len__(self):
        return len(self._events)

    def bind_kernel(self, kernel):
        """Use *kernel*'s counters as the trace clock; returns self."""
        self._kernel = kernel
        return self

    def emit(self, category, name, scope="", **args):
        """Record one event (no-op when disabled).

        Hot paths must additionally guard with ``if tracer.enabled:`` so
        a disabled tracer costs one attribute check and the *args* dict
        is never built.
        """
        if not self.enabled:
            return
        buffer = getattr(self._redirects, "buffer", None)
        if buffer is not None:
            buffer.pending.append((category, name, scope, args))
            return
        kernel = self._kernel
        if kernel is not None:
            timestep, delta, now = (kernel.timestep_count,
                                    kernel.delta_count, kernel.now)
        else:
            timestep = delta = now = 0
        if len(self._events) == self._events.maxlen:
            self.dropped += 1
        event = TraceEvent(self._seq, timestep, delta, now,
                           category, name, scope, args)
        self._events.append(event)
        self._seq += 1
        if self._taps:
            # Live streaming (repro.obs.stream_bus).  Taps run only on
            # main-thread emission — pool workers are redirected into a
            # TraceBuffer above and their payloads reach the taps when
            # replayed at the deterministic commit point.
            for tap in self._taps:
                tap(event)

    # -- streaming taps ------------------------------------------------------

    def add_tap(self, tap):
        """Call ``tap(event)`` for every event recorded into the ring.

        Taps see events in emission order (the deterministic total
        order of the trace) and never fire on a disabled tracer or
        inside a worker redirect.  Returns *tap* for later removal.
        """
        self._taps.append(tap)
        return tap

    def remove_tap(self, tap):
        """Detach a previously added tap (no-op if absent)."""
        if tap in self._taps:
            self._taps.remove(tap)

    # -- parallel-prefetch redirect ------------------------------------------

    def redirect_current_thread(self, buffer):
        """Divert this thread's emissions into *buffer* (a TraceBuffer).

        While a redirect is active, :meth:`emit` captures only the
        deterministic payload; sequence numbers and simulated-time
        fields are assigned later by :meth:`replay`.  Pass ``None`` to
        restore direct emission.
        """
        self._redirects.buffer = buffer

    def replay(self, payloads, scope=None):
        """Re-emit buffered ``(category, name, scope, args)`` payloads.

        Called at the quantum-boundary commit, on the main thread, in
        context-attach order — so the assigned sequence numbers and
        kernel counters match what serial execution would have
        produced at the same point.
        """
        for category, name, event_scope, args in payloads:
            self.emit(category, name, scope=event_scope, **args)

    # -- inspection ----------------------------------------------------------

    def events(self):
        """All buffered events, oldest first."""
        return list(self._events)

    def clear(self):
        """Drop all buffered events (counters keep running)."""
        self._events.clear()

    def counts(self):
        """``{"category/name": count}`` aggregation over the buffer."""
        return dict(Counter(event.key for event in self._events))

    def to_jsonable(self):
        """The buffered events as a list of plain dicts."""
        return [event.as_dict() for event in self._events]

    # -- exporters -----------------------------------------------------------

    def dump(self):
        """Canonical one-event-per-line JSON (see :func:`dump_events`)."""
        return dump_events(self._events, dropped=self.dropped)

    def chrome_trace(self):
        """The buffer as a Chrome trace-event JSON object.

        Events become instant events (``ph: "i"``) with ``ts`` in
        microseconds of *simulated* time (femtoseconds / 1e9), one
        ``tid`` per scope — load the output in ``chrome://tracing`` or
        Perfetto to see the three schemes' activity on the simulated
        timeline.
        """
        tids = {}
        trace_events = []
        for event in self._events:
            tid = tids.setdefault(event.scope or "kernel", len(tids))
            trace_events.append({
                "name": "%s/%s" % (event.category, event.name),
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.now / 1e9,
                "pid": 0,
                "tid": tid,
                "args": dict(event.args, seq=event.seq,
                             timestep=event.timestep, delta=event.delta),
            })
        metadata = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": scope}}
            for scope, tid in tids.items()
        ]
        return {"traceEvents": metadata + trace_events,
                "displayTimeUnit": "ms"}

    def chrome_trace_json(self):
        """:meth:`chrome_trace` serialised deterministically."""
        return json.dumps(self.chrome_trace(), sort_keys=True,
                          separators=(",", ":"))

    def timeline(self, limit=None):
        """A plain-text timeline of the buffer (newest *limit* events)."""
        events = list(self._events)
        if limit is not None:
            events = events[-limit:] if limit > 0 else []
        lines = []
        for event in events:
            details = " ".join("%s=%s" % (key, value)
                               for key, value in event.args.items())
            lines.append("#%-6d t=%-6d d=%-6d %-12d %-20s %-18s %s"
                         % (event.seq, event.timestep, event.delta,
                            event.now, event.key, event.scope, details))
        header = ("seq    timestep delta  now(fs)      event                "
                  "scope              details")
        return "\n".join([header] + lines)


#: Shared disabled tracer every instrumented component defaults to.
NULL_TRACER = Tracer(capacity=0, enabled=False)
