"""repro — reproduction of "Native ISS-SystemC Integration for the
Co-Simulation of Multi-Processor SoC" (Fummi, Martini, Perbellini,
Poncino — DATE 2004).

The package provides:

- :mod:`repro.sysc` — a SystemC-like discrete-event simulation kernel
  (modules, signals, ports, FIFOs, clocks, delta cycles) with the kernel
  extension hooks the paper's schemes patch into.
- :mod:`repro.iss` — a cycle-counted 32-bit RISC instruction-set
  simulator with assembler, disassembler, breakpoints and watchpoints.
- :mod:`repro.gdb` — a GDB Remote Serial Protocol stub and client.
- :mod:`repro.rtos` — a small eCos-like RTOS running guest threads on
  the ISS, with interrupts and a device-driver framework.
- :mod:`repro.cosim` — the three co-simulation schemes: GDB-Wrapper
  (the Benini et al. 2003 baseline), GDB-Kernel and Driver-Kernel.
- :mod:`repro.router` — the 4x4 packet-router case study of the paper.
- :mod:`repro.apps` — the guest checksum applications (bare-metal and
  RTOS/driver variants).
- :mod:`repro.analysis` — experiment harnesses for Table 1, Figure 7
  and the Section 5 code-complexity metric.
"""

from repro.version import __version__

__all__ = ["__version__"]
